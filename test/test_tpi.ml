open Fst_logic
open Fst_netlist
open Fst_tpi
module Q = QCheck

let options chains = { Tpi.default_options with Tpi.chains; justify_depth = 4 }

let test_figure2_insertion () =
  let c, _pi0, _ff0, _ff1, _g0 = Helpers.figure2_circuit () in
  let scanned, config = Tpi.insert ~options:(options 1) c in
  Alcotest.(check int) "one chain" 1 (Array.length config.Scan.chains);
  let ch = config.Scan.chains.(0) in
  Alcotest.(check int) "two flip-flops" 2 (Array.length ch.Scan.ffs);
  (match Scan.verify_shift_msg scanned config with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (* The AND gate path ff0 -> g0 -> ff1 is sensitizable by assigning pi0=1,
     so at most the chain head needs a multiplexer. *)
  Alcotest.(check bool) "few mux segments" true (config.Scan.mux_segments <= 2)

(* Every insertion yields a config that actually shifts, with the original
   circuit untouched on its existing nets. *)
let prop_insert_shifts =
  Q.Test.make ~name:"tpi chains shift correctly" ~count:25
    (Q.pair (Q.map Int64.of_int (Q.int_bound 1000000)) (Q.int_range 1 3))
    (fun (seed, chains) ->
      let c = Helpers.small_seq_circuit ~gates:150 ~ffs:12 seed in
      let scanned, config = Tpi.insert ~options:(options chains) c in
      (match Scan.verify_shift_msg scanned config with
       | Ok () -> ()
       | Error e -> QCheck.Test.fail_reportf "shift broken: %s" e);
      (* Original nets preserved verbatim. *)
      Circuit.num_nets c <= Circuit.num_nets scanned
      && Array.for_all
           (fun i ->
             Circuit.net_name c i = Circuit.net_name scanned i)
           (Array.init (Circuit.num_nets c) (fun i -> i)))

let prop_chain_partition_complete =
  Q.Test.make ~name:"chains cover all flip-flops exactly once" ~count:20
    (Q.pair (Q.map Int64.of_int (Q.int_bound 1000000)) (Q.int_range 1 4))
    (fun (seed, chains) ->
      let c = Helpers.small_seq_circuit ~gates:120 ~ffs:10 seed in
      let _, config = Tpi.insert ~options:(options chains) c in
      let all =
        Array.to_list config.Scan.chains
        |> List.concat_map (fun ch -> Array.to_list ch.Scan.ffs)
        |> List.sort compare
      in
      all = (Array.to_list c.Circuit.dffs |> List.sort compare))

let prop_segments_consistent =
  Q.Test.make ~name:"segment sources and sinks are chained" ~count:20
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:120 ~ffs:10 seed in
      let _, config = Tpi.insert ~options:(options 2) c in
      Array.for_all
        (fun ch ->
          let ok = ref true in
          Array.iteri
            (fun i (seg : Scan.segment) ->
              let expected_src =
                if i = 0 then ch.Scan.scan_in else ch.Scan.ffs.(i - 1)
              in
              if seg.Scan.src <> expected_src then ok := false;
              if seg.Scan.dst_ff <> ch.Scan.ffs.(i) then ok := false)
            ch.Scan.segments;
          !ok)
        config.Scan.chains)

let test_scan_mode_values_force_sides () =
  (* Every non-mux segment's and/or-family side pins must be non-controlling
     under the scan-mode constants; xor-family side pins must be binary. *)
  let c = Helpers.small_seq_circuit ~gates:200 ~ffs:14 21L in
  let scanned, config = Tpi.insert ~options:(options 2) c in
  let v = Scan.scan_mode_values scanned config in
  Array.iter
    (fun ch ->
      Array.iteri
        (fun s _ ->
          List.iter
            (fun (node, _pin, net) ->
              match Circuit.node scanned node with
              | Circuit.Gate (g, _) -> (
                match g with
                | Gate.And | Gate.Nand ->
                  Helpers.check_v3 "and side" V3.One v.(net)
                | Gate.Or | Gate.Nor ->
                  Helpers.check_v3 "or side" V3.Zero v.(net)
                | Gate.Xor | Gate.Xnor ->
                  Alcotest.(check bool) "xor side binary" true (V3.is_binary v.(net))
                | Gate.Not | Gate.Buf -> ())
              | Circuit.Input | Circuit.Const _ | Circuit.Dff _ ->
                Alcotest.fail "side pin on a non-gate")
            (Scan.side_pins scanned config ~chain:ch.Scan.index ~segment:s))
        ch.Scan.segments)
    config.Scan.chains

let test_scan_in_stream_parity () =
  let c = Helpers.small_seq_circuit ~gates:150 ~ffs:8 33L in
  let scanned, config = Tpi.insert ~options:(options 1) c in
  let ch = config.Scan.chains.(0) in
  let len = Array.length ch.Scan.ffs in
  let desired = Array.init len (fun p -> V3.of_bool (p mod 2 = 0)) in
  let stream = Scan.scan_in_stream ch ~values:desired in
  (* Simulate the stream and compare against the desired state. *)
  let st = Fst_sim.Sim.create scanned in
  List.iter (fun (n, v) -> Fst_sim.Sim.set_input scanned st n v) config.Scan.constraints;
  for t = 0 to len - 1 do
    Fst_sim.Sim.set_input scanned st ch.Scan.scan_in stream.(t);
    Fst_sim.Sim.eval_comb scanned st;
    Fst_sim.Sim.clock scanned st
  done;
  Array.iteri
    (fun p ff ->
      Helpers.check_v3
        (Printf.sprintf "position %d" p)
        desired.(p)
        (Fst_sim.Sim.value st ff))
    ch.Scan.ffs

let test_chain_locations_cover () =
  let c = Helpers.small_seq_circuit ~gates:150 ~ffs:8 44L in
  let scanned, config = Tpi.insert ~options:(options 2) c in
  let locs = Scan.chain_locations scanned config in
  Array.iter
    (fun ch ->
      (* scan-in is location 0. *)
      Alcotest.(check bool) "scan_in located" true
        (List.mem (ch.Scan.index, 0) locs.(ch.Scan.scan_in));
      Array.iteri
        (fun p ff ->
          Alcotest.(check bool) "ff located" true
            (List.mem (ch.Scan.index, p + 1) locs.(ff)))
        ch.Scan.ffs;
      Array.iteri
        (fun s (seg : Scan.segment) ->
          Array.iter
            (fun net ->
              Alcotest.(check bool) "path net located" true
                (List.mem (ch.Scan.index, s) locs.(net)))
            seg.Scan.path)
        ch.Scan.segments)
    config.Scan.chains

let test_full_scan_baseline () =
  let c = Helpers.small_seq_circuit ~gates:150 ~ffs:10 55L in
  let scanned, config = Tpi.full_scan ~chains:2 c in
  (match Scan.verify_shift_msg scanned config with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Alcotest.(check int) "every segment is a mux" 10 config.Scan.mux_segments;
  (* The paper's saving is in scan cells and dedicated routing: TPI needs
     strictly fewer multiplexed segments (dedicated scan routes) than the
     conventional baseline whenever functional paths exist. *)
  let tpi_scanned, tpi_config = Tpi.insert ~options:(options 2) c in
  let oh_full = Tpi.overhead scanned config ~before:c in
  let oh_tpi = Tpi.overhead tpi_scanned tpi_config ~before:c in
  Alcotest.(check bool) "tpi saves dedicated routes" true
    (oh_tpi.Tpi.dedicated_routes < oh_full.Tpi.dedicated_routes);
  Alcotest.(check bool) "tpi has functional segments" true
    (oh_tpi.Tpi.functional_segments > 0);
  Alcotest.(check bool) "overhead accounted" true (oh_tpi.Tpi.extra_gates > 0)

let functional_count config =
  Array.fold_left
    (fun acc ch ->
      Array.fold_left
        (fun acc (s : Scan.segment) -> if s.Scan.via_mux then acc else acc + 1)
        acc ch.Scan.segments)
    0 config.Scan.chains

let prop_orderings_shift =
  Q.Test.make ~name:"all orderings produce working chains" ~count:10
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:150 ~ffs:12 seed in
      List.for_all
        (fun ordering ->
          let scanned, config =
            Tpi.insert ~options:{ (options 2) with Tpi.ordering } c
          in
          match Scan.verify_shift_msg scanned config with
          | Ok () -> true
          | Error _ -> false)
        [ Tpi.Greedy_functional; Tpi.Natural; Tpi.Shuffled 99L ])

let test_shuffled_deterministic () =
  let c = Helpers.small_seq_circuit ~gates:120 ~ffs:10 3L in
  let order_of seed =
    let _, config =
      Tpi.insert ~options:{ (options 1) with Tpi.ordering = Tpi.Shuffled seed } c
    in
    Array.to_list config.Scan.chains.(0).Scan.ffs
  in
  Alcotest.(check (list int)) "same seed, same order" (order_of 7L) (order_of 7L);
  Alcotest.(check bool) "different seeds differ (usually)" true
    (order_of 7L <> order_of 8L)

let test_greedy_maximizes_functional () =
  (* Greedy ordering should reuse at least as many functional paths as the
     arbitrary natural order on average; check a batch. *)
  let greedy_total = ref 0 and natural_total = ref 0 in
  List.iter
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:150 ~ffs:12 seed in
      let _, cg =
        Tpi.insert ~options:{ (options 1) with Tpi.ordering = Tpi.Greedy_functional } c
      in
      let _, cn =
        Tpi.insert ~options:{ (options 1) with Tpi.ordering = Tpi.Natural } c
      in
      greedy_total := !greedy_total + functional_count cg;
      natural_total := !natural_total + functional_count cn)
    [ 1L; 2L; 3L; 4L; 5L ];
  Alcotest.(check bool)
    (Printf.sprintf "greedy %d >= natural %d" !greedy_total !natural_total)
    true
    (!greedy_total >= !natural_total)

let test_no_flip_flops_rejected () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let y = Builder.add_gate ~name:"y" b Gate.Not [ a ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  match Tpi.insert c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let suite =
  [
    Alcotest.test_case "figure2 insertion" `Quick test_figure2_insertion;
    Helpers.qcheck prop_insert_shifts;
    Helpers.qcheck prop_chain_partition_complete;
    Helpers.qcheck prop_segments_consistent;
    Alcotest.test_case "side pins forced" `Quick test_scan_mode_values_force_sides;
    Alcotest.test_case "scan-in stream parity" `Quick test_scan_in_stream_parity;
    Alcotest.test_case "chain locations cover" `Quick test_chain_locations_cover;
    Alcotest.test_case "full-scan baseline" `Quick test_full_scan_baseline;
    Helpers.qcheck prop_orderings_shift;
    Alcotest.test_case "shuffled is deterministic" `Quick test_shuffled_deterministic;
    Alcotest.test_case "greedy maximizes functional reuse" `Quick test_greedy_maximizes_functional;
    Alcotest.test_case "no flip-flops rejected" `Quick test_no_flip_flops_rejected;
  ]
