open Fst_logic
module Q = QCheck

let arb_v3 = Q.oneofl Helpers.all_v3

let check_binary_agrees name op bop =
  Alcotest.test_case name `Quick (fun () ->
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              Helpers.check_v3
                (Printf.sprintf "%s %c %c" name (V3.to_char (V3.of_bool a))
                   (V3.to_char (V3.of_bool b)))
                (V3.of_bool (bop a b))
                (op (V3.of_bool a) (V3.of_bool b)))
            [ false; true ])
        [ false; true ])

let test_x_absorption () =
  Helpers.check_v3 "0 and X" V3.Zero (V3.band V3.Zero V3.X);
  Helpers.check_v3 "X and 0" V3.Zero (V3.band V3.X V3.Zero);
  Helpers.check_v3 "1 and X" V3.X (V3.band V3.One V3.X);
  Helpers.check_v3 "1 or X" V3.One (V3.bor V3.One V3.X);
  Helpers.check_v3 "0 or X" V3.X (V3.bor V3.Zero V3.X);
  Helpers.check_v3 "X xor 1" V3.X (V3.bxor V3.X V3.One);
  Helpers.check_v3 "not X" V3.X (V3.bnot V3.X)

let test_char_roundtrip () =
  List.iter
    (fun v -> Helpers.check_v3 "char roundtrip" v (V3.of_char (V3.to_char v)))
    Helpers.all_v3

let test_int_roundtrip () =
  List.iter
    (fun v -> Helpers.check_v3 "int roundtrip" v (V3.of_int (V3.to_int v)))
    Helpers.all_v3

let prop_de_morgan =
  Q.Test.make ~name:"de morgan over v3" ~count:200
    (Q.pair arb_v3 arb_v3)
    (fun (a, b) ->
      V3.equal (V3.bnot (V3.band a b)) (V3.bor (V3.bnot a) (V3.bnot b)))

let prop_refines_monotone_and =
  (* Refining an X operand never changes an already-binary result. *)
  Q.Test.make ~name:"band monotone under refinement" ~count:500
    (Q.triple arb_v3 arb_v3 (Q.oneofl [ V3.Zero; V3.One ]))
    (fun (a, b, r) ->
      let before = V3.band a b in
      let a' = if V3.equal a V3.X then r else a in
      let after = V3.band a' b in
      V3.refines after before)

let test_gate_eval_truth_tables () =
  let expect g ins out =
    Helpers.check_v3
      (Printf.sprintf "%s" (Gate.to_string g))
      out
      (Gate.eval_list g ins)
  in
  expect Gate.And [ V3.One; V3.One ] V3.One;
  expect Gate.And [ V3.One; V3.Zero ] V3.Zero;
  expect Gate.Nand [ V3.One; V3.One ] V3.Zero;
  expect Gate.Nand [ V3.Zero; V3.X ] V3.One;
  expect Gate.Or [ V3.Zero; V3.Zero ] V3.Zero;
  expect Gate.Nor [ V3.Zero; V3.Zero ] V3.One;
  expect Gate.Xor [ V3.One; V3.One; V3.One ] V3.One;
  expect Gate.Xor [ V3.One; V3.Zero ] V3.One;
  expect Gate.Xnor [ V3.One; V3.Zero ] V3.Zero;
  expect Gate.Not [ V3.Zero ] V3.One;
  expect Gate.Buf [ V3.X ] V3.X

let test_controlling_values () =
  List.iter
    (fun g ->
      match Gate.controlling g with
      | Some c ->
        (* A controlling value at one input fixes the output. *)
        let out = Gate.eval_list g [ c; V3.X; V3.X ] in
        Helpers.check_v3
          (Gate.to_string g ^ " controlled")
          (Gate.controlled_output g) out
      | None -> ())
    [ Gate.And; Gate.Nand; Gate.Or; Gate.Nor ]

let test_inverting_matches_eval () =
  List.iter
    (fun g ->
      match g with
      | Gate.Not | Gate.Buf ->
        List.iter
          (fun v ->
            let out = Gate.eval_list g [ v ] in
            let expected = if Gate.inverting g then V3.bnot v else v in
            Helpers.check_v3 (Gate.to_string g) expected out)
          Helpers.all_v3
      | _ -> ())
    Gate.all

let test_dval_calculus () =
  let check name expected got =
    Alcotest.check (Alcotest.testable Dval.pp Dval.equal) name expected got
  in
  check "and(d, 1) = d" Dval.d (Dval.eval Gate.And [| Dval.d; Dval.one |]);
  check "and(d, 0) = 0" Dval.zero (Dval.eval Gate.And [| Dval.d; Dval.zero |]);
  check "not d = d'" Dval.dbar (Dval.bnot Dval.d);
  check "xor(d, d) = 0" Dval.zero (Dval.eval Gate.Xor [| Dval.d; Dval.d |]);
  check "xor(d, d') = 1" Dval.one (Dval.eval Gate.Xor [| Dval.d; Dval.dbar |]);
  Alcotest.(check bool) "d is effect" true (Dval.is_fault_effect Dval.d);
  Alcotest.(check bool) "x is not effect" false (Dval.is_fault_effect Dval.x);
  Alcotest.(check bool)
    "and(d, x) undetermined" true
    (Dval.has_x (Dval.eval Gate.And [| Dval.d; Dval.x |]))

(* The packed 2-bit calculus agrees with V3 on every operand pair, and
   [detects] is exactly complementary-binary disagreement. *)
let test_v3b_agrees_with_v3 () =
  let codes = List.map V3b.of_v3 Helpers.all_v3 in
  List.iter
    (fun a ->
      Helpers.check_v3 "v3 roundtrip" (V3b.to_v3 (V3b.of_v3 a)) a;
      let ca = V3b.of_v3 a in
      Helpers.check_v3 "bnot" (V3.bnot a) (V3b.to_v3 (V3b.bnot ca));
      Alcotest.(check bool) "is_code" true (V3b.is_code ca);
      Alcotest.(check char) "to_char" (V3.to_char a) (V3b.to_char ca);
      List.iter
        (fun b ->
          let cb = V3b.of_v3 b in
          Helpers.check_v3 "band" (V3.band a b) (V3b.to_v3 (V3b.band ca cb));
          Helpers.check_v3 "bor" (V3.bor a b) (V3b.to_v3 (V3b.bor ca cb));
          Helpers.check_v3 "bxor" (V3.bxor a b) (V3b.to_v3 (V3b.bxor ca cb));
          let complementary =
            match a, b with
            | V3.One, V3.Zero | V3.Zero, V3.One -> true
            | _, _ -> false
          in
          Alcotest.(check bool) "detects" complementary
            (V3b.detects ~good:ca ~faulty:cb))
        Helpers.all_v3;
      (* Fold units leave the other operand unchanged. *)
      Helpers.check_v3 "and unit" a (V3b.to_v3 (V3b.band ca V3b.and_unit));
      Helpers.check_v3 "or unit" a (V3b.to_v3 (V3b.bor ca V3b.or_unit));
      Helpers.check_v3 "xor unit" a (V3b.to_v3 (V3b.bxor ca V3b.xor_unit)))
    Helpers.all_v3;
  (* The three codes are distinct and char-roundtrip. *)
  Alcotest.(check int) "three codes" 3
    (List.length (List.sort_uniq Int.compare codes));
  List.iter
    (fun c ->
      Alcotest.(check int) "char roundtrip" c (V3b.of_char (V3b.to_char c)))
    codes

let test_gate_string_roundtrip () =
  List.iter
    (fun g ->
      match Gate.of_string (Gate.to_string g) with
      | Some g' -> Alcotest.(check bool) "gate roundtrip" true (Gate.equal g g')
      | None -> Alcotest.fail "gate name did not parse")
    Gate.all

let suite =
  [
    check_binary_agrees "band" V3.band ( && );
    check_binary_agrees "bor" V3.bor ( || );
    check_binary_agrees "bxor" V3.bxor ( <> );
    Alcotest.test_case "x absorption" `Quick test_x_absorption;
    Alcotest.test_case "char roundtrip" `Quick test_char_roundtrip;
    Alcotest.test_case "int roundtrip" `Quick test_int_roundtrip;
    Helpers.qcheck prop_de_morgan;
    Helpers.qcheck prop_refines_monotone_and;
    Alcotest.test_case "gate truth tables" `Quick test_gate_eval_truth_tables;
    Alcotest.test_case "controlling values" `Quick test_controlling_values;
    Alcotest.test_case "inversion parity" `Quick test_inverting_matches_eval;
    Alcotest.test_case "d calculus" `Quick test_dval_calculus;
    Alcotest.test_case "v3b packed calculus" `Quick test_v3b_agrees_with_v3;
    Alcotest.test_case "gate name roundtrip" `Quick test_gate_string_roundtrip;
  ]
