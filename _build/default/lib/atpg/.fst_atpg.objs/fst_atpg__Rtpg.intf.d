lib/atpg/rtpg.mli: Fst_gen Fst_logic Fst_netlist V3 View
