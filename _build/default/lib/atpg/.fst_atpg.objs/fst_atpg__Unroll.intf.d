lib/atpg/unroll.mli: Circuit Fault Fst_fault Fst_logic Fst_netlist Hashtbl V3 View
