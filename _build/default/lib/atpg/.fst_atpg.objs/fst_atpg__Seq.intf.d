lib/atpg/seq.mli: Circuit Fault Fst_fault Fst_logic Fst_netlist V3
