lib/atpg/podem.ml: Array Circuit Fault Fst_fault Fst_logic Fst_netlist Fst_testability Gate Int List Sys V3 View
