lib/atpg/unroll.ml: Array Circuit Fault Fst_fault Fst_logic Fst_netlist Gate Hashtbl List Printf V3 View
