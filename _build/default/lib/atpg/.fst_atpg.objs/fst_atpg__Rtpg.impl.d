lib/atpg/rtpg.ml: Array Circuit Fst_gen Fst_logic Fst_netlist Gate List V3 View
