lib/atpg/podem.mli: Fault Fst_fault Fst_logic Fst_netlist Fst_testability V3 View
