lib/atpg/seq.ml: Array Fst_logic List Podem Sys Unroll V3
