(** Random test-pattern generation over a combinational view.

    The paper notes that in a partial-scan setting the deterministic
    combinational test set of step 2 can be replaced by random vectors;
    this module provides both plain and weighted random vectors. The
    weighted generator biases each free input toward the value its fanout
    logic finds harder to produce (an and-dominated cone starves for 1s,
    an or-dominated cone for 0s) — the classic weighted-random heuristic. *)

open Fst_logic
open Fst_netlist

(** [uniform rng view] assigns every free input a fair coin flip. *)
val uniform : Fst_gen.Rng.t -> View.t -> (int * V3.t) list

(** [weights view] is the per-free-input probability of drawing a 1,
    derived from the consumer gate mix (Laplace-smoothed). *)
val weights : View.t -> (int * float) list

(** [weighted rng view] draws one vector under {!weights}. *)
val weighted : Fst_gen.Rng.t -> View.t -> (int * V3.t) list
