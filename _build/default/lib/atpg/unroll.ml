open Fst_logic
open Fst_netlist
open Fst_fault

type origin = Pi of { frame : int; net : int } | State of int

type t = {
  original : Circuit.t;
  frames : int;
  view : View.t;
  net_at : int array array;
  origin_of : (int, origin) Hashtbl.t;
  capture_of : int array; (* orig ff net -> capture-buffer net, or -1 *)
}

let build (c : Circuit.t) ~frames ~constraints ~controllable_ff ~observable_ff =
  assert (frames >= 1);
  let n = Circuit.num_nets c in
  let fixed_pi = Array.make n None in
  List.iter (fun (i, v) -> fixed_pi.(i) <- Some v) constraints;
  let observable_ffs =
    Array.to_list c.Circuit.dffs |> List.filter observable_ff
  in
  let total = (frames * n) + List.length observable_ffs in
  let nodes = Array.make total Circuit.Input in
  let names = Array.make total "" in
  (* Net mapping is closed-form: frame [f], original [i] -> [f*n + i]. *)
  let net_at = Array.init frames (fun f -> Array.init n (fun i -> (f * n) + i)) in
  let origin_of = Hashtbl.create 64 in
  let free = ref [] in
  for f = 0 to frames - 1 do
    for i = 0 to n - 1 do
      let id = (f * n) + i in
      names.(id) <- Printf.sprintf "%s@%d" (Circuit.net_name c i) f;
      let node =
        match Circuit.node c i with
        | Circuit.Input -> (
          match fixed_pi.(i) with
          | Some v -> Circuit.Const v
          | None ->
            Hashtbl.replace origin_of id (Pi { frame = f; net = i });
            free := id :: !free;
            Circuit.Input)
        | Circuit.Const v -> Circuit.Const v
        | Circuit.Gate (g, fi) ->
          Circuit.Gate (g, Array.map (fun x -> net_at.(f).(x)) fi)
        | Circuit.Dff data ->
          if f = 0 then
            if controllable_ff i then begin
              Hashtbl.replace origin_of id (State i);
              free := id :: !free;
              Circuit.Input
            end
            else Circuit.Const V3.X
          else Circuit.Gate (Gate.Buf, [| net_at.(f - 1).(data) |])
      in
      nodes.(id) <- node
    done
  done;
  let capture_of = Array.make n (-1) in
  List.iteri
    (fun k ff ->
      let id = (frames * n) + k in
      let data =
        match Circuit.node c ff with
        | Circuit.Dff d -> d
        | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false
      in
      nodes.(id) <- Circuit.Gate (Gate.Buf, [| net_at.(frames - 1).(data) |]);
      names.(id) <- Printf.sprintf "%s@cap" (Circuit.net_name c ff);
      capture_of.(ff) <- id)
    observable_ffs;
  (* Observation points: every frame's primary outputs; the state an
     observable flip-flop holds in frames 1..frames-1 (a buffer output, so
     branch faults on the data pin are seen); and its final captured value. *)
  let observe = ref [] in
  for f = 0 to frames - 1 do
    Array.iter
      (fun o -> observe := View.Onet net_at.(f).(o) :: !observe)
      c.Circuit.outputs
  done;
  List.iter
    (fun ff ->
      for f = 1 to frames - 1 do
        observe := View.Onet net_at.(f).(ff) :: !observe
      done;
      observe := View.Onet capture_of.(ff) :: !observe)
    observable_ffs;
  let uc =
    Circuit.make
      ~name:(Printf.sprintf "%s#x%d" c.Circuit.name frames)
      ~nodes ~net_names:names ~outputs:[||]
  in
  let view = View.make uc ~free:!free ~fixed:[] ~observe:!observe in
  { original = c; frames; view; net_at; origin_of; capture_of }

let map_fault u (fault : Fault.t) =
  let c = u.original in
  let acc = ref [] in
  (match fault.Fault.site with
   | Fault.Stem net ->
     for f = 0 to u.frames - 1 do
       acc :=
         { Fault.site = Fault.Stem u.net_at.(f).(net); stuck = fault.Fault.stuck }
         :: !acc
     done;
     if Circuit.is_dff c net && u.capture_of.(net) >= 0 then
       acc :=
         { Fault.site = Fault.Stem u.capture_of.(net); stuck = fault.Fault.stuck }
         :: !acc
   | Fault.Branch { node; pin } -> (
     match Circuit.node c node with
     | Circuit.Gate _ ->
       for f = 0 to u.frames - 1 do
         acc :=
           {
             Fault.site = Fault.Branch { node = u.net_at.(f).(node); pin };
             stuck = fault.Fault.stuck;
           }
           :: !acc
       done
     | Circuit.Dff _ ->
       for f = 1 to u.frames - 1 do
         acc :=
           {
             Fault.site = Fault.Branch { node = u.net_at.(f).(node); pin = 0 };
             stuck = fault.Fault.stuck;
           }
           :: !acc
       done;
       if u.capture_of.(node) >= 0 then
         acc :=
           {
             Fault.site = Fault.Branch { node = u.capture_of.(node); pin = 0 };
             stuck = fault.Fault.stuck;
           }
           :: !acc
     | Circuit.Input | Circuit.Const _ -> assert false));
  !acc

let origin u net =
  match Hashtbl.find_opt u.origin_of net with
  | Some o -> o
  | None -> invalid_arg (Printf.sprintf "Unroll.origin: net %d is not free" net)
