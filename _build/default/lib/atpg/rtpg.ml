open Fst_logic
open Fst_netlist

let uniform rng view =
  View.free_inputs view |> Array.to_list
  |> List.map (fun net -> (net, V3.of_bool (Fst_gen.Rng.bool rng)))

(* Bias toward the value the input's consumers starve for: and-family pins
   want 1s (their non-controlling value), or-family pins want 0s,
   xor-family pins are neutral. *)
let weights view =
  let c = view.View.circuit in
  View.free_inputs view |> Array.to_list
  |> List.map (fun net ->
         let ones = ref 1 and total = ref 2 in
         Array.iter
           (fun consumer ->
             match Circuit.node c consumer with
             | Circuit.Gate ((Gate.And | Gate.Nand), _) ->
               incr ones;
               incr total
             | Circuit.Gate ((Gate.Or | Gate.Nor), _) -> incr total
             | Circuit.Gate ((Gate.Xor | Gate.Xnor | Gate.Not | Gate.Buf), _)
             | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ())
           c.Circuit.fanout.(net);
         (net, float_of_int !ones /. float_of_int !total))

let weighted rng view =
  List.map
    (fun (net, p) -> (net, V3.of_bool (Fst_gen.Rng.float rng < p)))
    (weights view)
