(** Time-frame expansion of a sequential circuit into a combinational model
    for sequential ATPG.

    The circuit is replicated for [frames] clock cycles under a fixed set of
    primary-input constraints (the scan-mode values). In frame 0 each
    flip-flop output becomes a fresh input when its initial state is
    controllable (reachable through the fault-free chain prefix) and an
    unknown source otherwise; in later frames it becomes a buffer of the
    previous frame's data net. Observation points are the primary outputs
    of every frame plus, for each observable flip-flop, the value it latches
    at the end of every frame (including the last, via dedicated capture
    buffers). *)

open Fst_logic
open Fst_netlist
open Fst_fault

type origin =
  | Pi of { frame : int; net : int }  (** per-frame copy of a free input *)
  | State of int  (** frame-0 state of a controllable flip-flop *)

type t = {
  original : Circuit.t;
  frames : int;
  view : View.t;  (** combinational view of the unrolled circuit *)
  net_at : int array array;  (** [net_at.(frame).(orig)] = unrolled net *)
  origin_of : (int, origin) Hashtbl.t;
      (** reverse map for the unrolled free inputs *)
  capture_of : int array;
      (** per original flip-flop net: the capture-buffer net observing what
          it latches at the end of the last frame, or [-1] *)
}

val build :
  Circuit.t ->
  frames:int ->
  constraints:(int * V3.t) list ->
  controllable_ff:(int -> bool) ->
  observable_ff:(int -> bool) ->
  t

(** [map_fault u f] replicates an original-circuit fault onto every frame of
    the unrolled model. *)
val map_fault : t -> Fault.t -> Fault.t list

(** [origin u net] describes where an unrolled free input came from. *)
val origin : t -> int -> origin
