(** Sequential stuck-at fault simulation.

    A test is a {!stimulus}: per clock cycle, assignments to primary inputs
    (unassigned inputs hold their previous value, starting from [X]).
    Detection is conservative: a fault is detected at cycle [t] when some
    observed net carries a binary value in the good machine and the
    complementary binary value in the faulty machine. A potential detection
    (faulty value [X]) does not count, as in the paper. *)

open Fst_logic
open Fst_netlist
open Fst_fault

type stimulus = (int * V3.t) list array

(** Reference implementation: one faulty machine at a time. *)
module Serial : sig
  (** [detect c ~fault ~observe stim] is [Some t] for the first cycle at
      which [fault] is detected on one of the [observe] nets, else [None]. *)
  val detect :
    Circuit.t -> fault:Fault.t -> observe:int array -> stimulus -> int option

  (** [trace c ~fault ~observe stim] runs the whole stimulus on the
      (faulty, or fault-free when [fault] is [None]) machine and records
      the [observe] net values at every cycle. *)
  val trace :
    Circuit.t ->
    fault:Fault.t option ->
    observe:int array ->
    stimulus ->
    V3.t array array
end

(** 62 faulty machines per pass, three-valued (two bit-planes per net). *)
module Parallel : sig
  (** [detect_all c ~faults ~observe stim] maps each fault to its first
      detection cycle. Faults are processed in groups of up to 62. *)
  val detect_all :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimulus ->
    int option array

  (** [detect_dropping c ~faults ~observe ~stimuli] simulates a list of
      stimulus blocks in order with cross-block fault dropping: faults
      detected in an earlier block are not simulated in later ones.
      Returns, per fault, [Some (block, cycle)] or [None]. *)
  val detect_dropping :
    Circuit.t ->
    faults:Fault.t array ->
    observe:int array ->
    stimuli:stimulus list ->
    (int * int) option array
end
