lib/fsim/fsim.ml: Array Circuit Fault Fst_fault Fst_logic Fst_netlist Fst_sim Gate List Sim V3
