open Fst_logic
open Fst_netlist

type ordering = Greedy_functional | Natural | Shuffled of int64

type options = {
  chains : int;
  justify_depth : int;
  max_path_cost : int;
  ordering : ordering;
}

let default_options =
  { chains = 1; justify_depth = 4; max_path_cost = 16;
    ordering = Greedy_functional }

type state = {
  b : Builder.t;
  scan_mode : int;
  scan_mode_n : int;
  mutable constraints : (int * V3.t) list;
  mutable never_constrain : int list; (* scan-in nets stay free *)
  mutable protected : int list; (* chain nets that must stay unknown *)
  mutable test_points : int;
  mutable mux_segments : int;
  tp_cache : (int * V3.t, int) Hashtbl.t;
  mutable values : V3.t array; (* scan-mode constant propagation *)
  mutable values_valid : bool;
  mutable fanout : int list array; (* consumers, rebuilt on demand *)
  mutable fanout_valid : bool;
}

let node_fanins st i =
  match Builder.node st.b i with
  | Circuit.Input | Circuit.Const _ -> [||]
  | Circuit.Gate (_, fi) -> fi
  | Circuit.Dff d -> [| d |]

(* Scan-mode constant propagation over the (mutable) builder: constrained
   inputs take their values, everything sequential reads as unknown. *)
let compute_values st =
  let n = Builder.net_count st.b in
  let v = Array.make n V3.X in
  let visited = Array.make n false in
  let rec eval i =
    if visited.(i) then v.(i)
    else begin
      let r =
        match Builder.node st.b i with
        | Circuit.Input -> (
          match List.assoc_opt i st.constraints with
          | Some k -> k
          | None -> V3.X)
        | Circuit.Const k -> k
        | Circuit.Dff _ -> V3.X
        | Circuit.Gate (g, fi) -> Gate.eval g (Array.map eval fi)
      in
      visited.(i) <- true;
      v.(i) <- r;
      r
    end
  in
  for i = 0 to n - 1 do
    ignore (eval i)
  done;
  v

let values st =
  if not st.values_valid then begin
    st.values <- compute_values st;
    st.values_valid <- true
  end;
  st.values

let invalidate st =
  st.values_valid <- false;
  st.fanout_valid <- false

let fanout st =
  if not st.fanout_valid then begin
    let n = Builder.net_count st.b in
    let fo = Array.make n [] in
    for i = 0 to n - 1 do
      Array.iter (fun f -> fo.(f) <- i :: fo.(f)) (node_fanins st i)
    done;
    st.fanout <- fo;
    st.fanout_valid <- true
  end;
  st.fanout

let noncontrolling_for = function
  | Gate.And | Gate.Nand -> V3.One
  | Gate.Or | Gate.Nor -> V3.Zero
  | Gate.Xor | Gate.Xnor -> V3.Zero
  | Gate.Not | Gate.Buf -> V3.X (* no side inputs exist *)

(* Shallow backward justification of [net = target] by assigning
   unconstrained primary inputs. Returns the extra constraints needed, or
   None. Sequential elements and xor gates are given up on. *)
let rec justify st depth net target acc =
  if depth < 0 then None
  else
    match Builder.node st.b net with
    | Circuit.Input ->
      if List.mem net st.never_constrain then None
      else (
        match List.assoc_opt net st.constraints, List.assoc_opt net acc with
        | Some v, _ | None, Some v ->
          if V3.equal v target then Some acc else None
        | None, None -> Some ((net, target) :: acc))
    | Circuit.Const k -> if V3.equal k target then Some acc else None
    | Circuit.Dff _ -> None
    | Circuit.Gate (g, fi) -> (
      match g with
      | Gate.Buf -> justify st (depth - 1) fi.(0) target acc
      | Gate.Not -> justify st (depth - 1) fi.(0) (V3.bnot target) acc
      | Gate.Xor | Gate.Xnor -> None
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
        let base_target = if Gate.inverting g then V3.bnot target else target in
        let ctrl =
          match Gate.controlling g with
          | Some c -> c
          | None -> assert false
        in
        let controlled_out =
          match g with
          | Gate.And | Gate.Nand -> V3.Zero
          | Gate.Or | Gate.Nor -> V3.One
          | Gate.Xor | Gate.Xnor | Gate.Not | Gate.Buf -> assert false
        in
        if V3.equal base_target controlled_out then
          (* one controlling input suffices *)
          let rec try_pins k =
            if k >= Array.length fi then None
            else
              match justify st (depth - 1) fi.(k) ctrl acc with
              | Some acc' -> Some acc'
              | None -> try_pins (k + 1)
          in
          try_pins 0
        else
          (* every input must be non-controlling *)
          Array.fold_left
            (fun acc_opt f ->
              match acc_opt with
              | None -> None
              | Some acc -> justify st (depth - 1) f (V3.bnot ctrl) acc)
            (Some acc) fi)

(* Commits [extra] constraints if they leave every protected chain net
   unknown; rolls back otherwise. *)
let try_commit st extra =
  if extra = [] then true
  else begin
    let saved = st.constraints in
    st.constraints <- extra @ st.constraints;
    st.values_valid <- false;
    let v = values st in
    let ok = List.for_all (fun n -> V3.equal v.(n) V3.X) st.protected in
    if not ok then begin
      st.constraints <- saved;
      st.values_valid <- false
    end;
    ok
  end

let insert_test_point st ~node ~pin ~side ~nc =
  let tp =
    match Hashtbl.find_opt st.tp_cache (side, nc) with
    | Some tp -> tp
    | None ->
      let name =
        Printf.sprintf "tp%d_%s" st.test_points
          (match nc with V3.Zero -> "f0" | V3.One -> "f1" | V3.X -> "fx")
      in
      let tp =
        match nc with
        | V3.Zero -> Builder.add_gate ~name st.b Gate.And [ side; st.scan_mode_n ]
        | V3.One -> Builder.add_gate ~name st.b Gate.Or [ side; st.scan_mode ]
        | V3.X -> assert false
      in
      Hashtbl.add st.tp_cache (side, nc) tp;
      st.test_points <- st.test_points + 1;
      tp
  in
  Builder.rewire_fanin st.b ~node ~pin ~net:tp;
  invalidate st

(* Forces every side input of [gate_net] (entered from [entering]) to a
   transparent value: by existing constants, by PI justification, or by a
   control test point. For and/or-family gates transparent means the
   non-controlling value; for xor-family gates any binary value is
   transparent (a constant 1 contributes an inversion, accounted for in
   {!gate_parity}). *)
let sensitize_gate st ~justify_depth ~gate_net ~entering =
  match Builder.node st.b gate_net with
  | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> assert false
  | Circuit.Gate (g, fi) ->
    let nc = noncontrolling_for g in
    Array.iteri
      (fun pin side ->
        if side <> entering then begin
          let v = (values st).(side) in
          let transparent =
            match g with
            | Gate.Xor | Gate.Xnor -> V3.is_binary v
            | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Not | Gate.Buf
              -> V3.equal v nc
          in
          if not transparent then begin
            assert (V3.equal v V3.X);
            let justified =
              match justify st justify_depth side nc [] with
              | Some extra -> try_commit st extra
              | None -> false
            in
            if not justified then
              insert_test_point st ~node:gate_net ~pin ~side ~nc
          end
        end)
      fi

(* Post-sensitization inversion contributed by one path gate: the gate's
   own polarity, plus one inversion per constant-1 side pin of an
   xor-family gate. *)
let gate_parity st ~gate_net ~entering =
  match Builder.node st.b gate_net with
  | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> assert false
  | Circuit.Gate (g, fi) -> (
    let base = Gate.inverting g in
    match g with
    | Gate.Xor | Gate.Xnor ->
      let v = values st in
      Array.fold_left
        (fun acc f ->
          if f = entering then acc
          else
            match v.(f) with
            | V3.One -> not acc
            | V3.Zero | V3.X -> acc)
        base fi
    | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Not | Gate.Buf -> base)

(* Cheapest sensitizable route from [src] through still-unknown, unused
   gates (Dijkstra). Crossing a gate costs 1 plus one unit per side pin
   that would need forcing (its scan-mode value is still unknown), so the
   chosen paths minimize inserted test points, not just gate count.
   Returns (predecessor, cost) maps over nets (-2 unreached, -1 start). *)
let cheapest_reach st ~src ~used =
  let n = Builder.net_count st.b in
  let prev = Array.make n (-2) in
  let cost = Array.make n max_int in
  prev.(src) <- -1;
  cost.(src) <- 0;
  let v = values st in
  let fo = fanout st in
  (* An xor-family gate transmits the entering net only when it feeds an
     odd number of pins (XOR(a,a) is constant 0 even though the three-valued
     evaluator reads it as X). And-family gates transmit for any
     multiplicity. *)
  let transmits consumer x =
    match Builder.node st.b consumer with
    | Circuit.Gate ((Gate.Xor | Gate.Xnor), fi) ->
      let m = Array.fold_left (fun acc f -> if f = x then acc + 1 else acc) 0 fi in
      m land 1 = 1
    | Circuit.Gate
        ((Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Not | Gate.Buf), _)
      -> true
    | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> false
  in
  let crossing_cost consumer x =
    match Builder.node st.b consumer with
    | Circuit.Gate (_, fi) ->
      let forced = ref 0 in
      Array.iter
        (fun f -> if f <> x && V3.equal v.(f) V3.X then incr forced)
        fi;
      1 + !forced
    | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> 1
  in
  let module Pq = Set.Make (struct
    type t = int * int (* cost, net *)

    let compare = compare
  end) in
  let queue = ref (Pq.singleton (0, src)) in
  while not (Pq.is_empty !queue) do
    let (c, x) as entry = Pq.min_elt !queue in
    queue := Pq.remove entry !queue;
    if c = cost.(x) then
      List.iter
        (fun consumer ->
          match Builder.node st.b consumer with
          | Circuit.Gate _ ->
            if (not used.(consumer))
               && V3.equal v.(consumer) V3.X
               && transmits consumer x
            then begin
              let c' = c + crossing_cost consumer x in
              if c' < cost.(consumer) then begin
                cost.(consumer) <- c';
                prev.(consumer) <- x;
                queue := Pq.add (c', consumer) !queue
              end
            end
          | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ())
        fo.(x)
  done;
  (prev, cost)

let reconstruct_path prev ~target =
  let rec walk n acc = if prev.(n) = -1 then acc else walk prev.(n) (n :: acc) in
  Array.of_list (walk target [])

let data_of st ff =
  match Builder.node st.b ff with
  | Circuit.Dff d -> d
  | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false

let add_mux st ~src ~ff =
  let d_old = data_of st ff in
  let pick = Builder.add_gate st.b Gate.And [ st.scan_mode; src ] in
  let hold = Builder.add_gate st.b Gate.And [ st.scan_mode_n; d_old ] in
  let mux = Builder.add_gate st.b Gate.Or [ pick; hold ] in
  Builder.set_dff_data st.b ~ff ~data:mux;
  st.mux_segments <- st.mux_segments + 1;
  invalidate st;
  {
    Scan.src;
    dst_ff = ff;
    path = [| pick; mux |];
    invert = false;
    via_mux = true;
  }

(* Builds the segment from [src] into [ff] over [path] (gate nets ending at
   the data net of [ff]); sensitizes every gate on the way and accumulates
   the segment parity. *)
let functional_segment st ~justify_depth ~src ~ff ~path =
  Array.iter (fun n -> st.protected <- n :: st.protected) path;
  let entering = ref src in
  let invert = ref false in
  Array.iter
    (fun gate_net ->
      sensitize_gate st ~justify_depth ~gate_net ~entering:!entering;
      if gate_parity st ~gate_net ~entering:!entering then invert := not !invert;
      entering := gate_net)
    path;
  { Scan.src; dst_ff = ff; path; invert = !invert; via_mux = false }

(* Picks the next flip-flop of the chain. Under [Greedy_functional] it is
   the remaining flip-flop whose data net is reachable from [src] at the
   lowest sensitization cost (or directly wired); under a fixed ordering
   only the head of [remaining] is considered. Paths costing more than
   [max_cost] are not worth their test points compared to a multiplexer
   and are rejected. *)
let pick_next st ~src ~remaining ~used ~max_cost ~greedy =
  let candidates =
    if greedy then remaining
    else match remaining with [] -> [] | ff :: _ -> [ ff ]
  in
  let direct = List.find_opt (fun ff -> data_of st ff = src) candidates in
  match direct with
  | Some ff -> Some (ff, [||])
  | None ->
    let prev, cost = cheapest_reach st ~src ~used in
    let best = ref None in
    List.iter
      (fun ff ->
        let d = data_of st ff in
        if prev.(d) <> -2 && d <> src && cost.(d) <= max_cost then begin
          match !best with
          | Some (_, _, c) when c <= cost.(d) -> ()
          | Some _ | None ->
            best := Some (ff, reconstruct_path prev ~target:d, cost.(d))
        end)
      candidates;
    (match !best with Some (ff, path, _) -> Some (ff, path) | None -> None)

let build_chain st ~justify_depth ~max_path_cost ~greedy ~index ~ffs ~used =
  let scan_in =
    Builder.add_input ~name:(Printf.sprintf "scan_in%d" index) st.b
  in
  invalidate st;
  st.never_constrain <- scan_in :: st.never_constrain;
  st.protected <- scan_in :: st.protected;
  let remaining = ref ffs in
  let order = ref [] in
  let segments = ref [] in
  let src = ref scan_in in
  while !remaining <> [] do
    let seg, ff =
      match pick_next st ~src:!src ~remaining:!remaining ~used
              ~max_cost:max_path_cost ~greedy
      with
      | Some (ff, [||]) ->
        ( {
            Scan.src = !src;
            dst_ff = ff;
            path = [||];
            invert = false;
            via_mux = false;
          },
          ff )
      | Some (ff, path) ->
        Array.iter (fun n -> used.(n) <- true) path;
        (functional_segment st ~justify_depth ~src:!src ~ff ~path, ff)
      | None ->
        let ff =
          match !remaining with [] -> assert false | ff :: _ -> ff
        in
        let seg = add_mux st ~src:!src ~ff in
        Array.iter (fun n -> used.(n) <- true) seg.Scan.path;
        (seg, ff)
    in
    st.protected <- ff :: st.protected;
    remaining := List.filter (fun x -> x <> ff) !remaining;
    order := ff :: !order;
    segments := seg :: !segments;
    src := ff
  done;
  let ffs_arr = Array.of_list (List.rev !order) in
  let scan_out = ffs_arr.(Array.length ffs_arr - 1) in
  {
    Scan.index;
    scan_in;
    scan_out;
    ffs = ffs_arr;
    segments = Array.of_list (List.rev !segments);
  }

let shuffle seed ffs =
  let rng = Fst_gen.Rng.create seed in
  let arr = Array.copy ffs in
  for i = Array.length arr - 1 downto 1 do
    let j = Fst_gen.Rng.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  arr

let partition_ffs dffs chains =
  let n = Array.length dffs in
  let per = (n + chains - 1) / chains in
  List.init chains (fun k ->
      let lo = k * per in
      let hi = min n (lo + per) in
      if lo >= hi then []
      else Array.to_list (Array.sub dffs lo (hi - lo)))
  |> List.filter (fun l -> l <> [])

let insert ?(options = default_options) (c : Circuit.t) =
  if Circuit.dff_count c = 0 then
    invalid_arg "Tpi.insert: circuit has no flip-flops";
  let b = Builder.of_circuit c in
  let scan_mode = Builder.add_input ~name:"scan_mode" b in
  let scan_mode_n = Builder.add_gate ~name:"scan_mode_n" b Gate.Not [ scan_mode ] in
  let st =
    {
      b;
      scan_mode;
      scan_mode_n;
      constraints = [ (scan_mode, V3.One) ];
      never_constrain = [];
      protected = [];
      test_points = 0;
      mux_segments = 0;
      tp_cache = Hashtbl.create 16;
      values = [||];
      values_valid = false;
      fanout = [||];
      fanout_valid = false;
    }
  in
  let used = Array.make (16 * max 64 (Circuit.num_nets c)) false in
  let dffs =
    match options.ordering with
    | Greedy_functional | Natural -> c.Circuit.dffs
    | Shuffled seed -> shuffle seed c.Circuit.dffs
  in
  let greedy = options.ordering = Greedy_functional in
  let parts = partition_ffs dffs (max 1 options.chains) in
  let chains =
    List.mapi
      (fun index ffs ->
        build_chain st ~justify_depth:options.justify_depth
          ~max_path_cost:options.max_path_cost ~greedy ~index ~ffs ~used)
      parts
  in
  List.iter
    (fun ch ->
      if not (Array.exists (fun o -> o = ch.Scan.scan_out) c.Circuit.outputs)
      then Builder.mark_output st.b ch.Scan.scan_out)
    chains;
  let scanned = Builder.freeze st.b in
  ( scanned,
    {
      Scan.scan_mode;
      constraints = st.constraints;
      chains = Array.of_list chains;
      test_points = st.test_points;
      mux_segments = st.mux_segments;
    } )

type overhead = {
  extra_gates : int;
  dedicated_routes : int;
  functional_segments : int;
}

let overhead (scanned : Circuit.t) (config : Scan.config) ~(before : Circuit.t)
    =
  let functional_segments =
    Array.fold_left
      (fun acc ch ->
        Array.fold_left
          (fun acc (s : Scan.segment) -> if s.Scan.via_mux then acc else acc + 1)
          acc ch.Scan.segments)
      0 config.Scan.chains
  in
  {
    extra_gates = Circuit.gate_count scanned - Circuit.gate_count before;
    dedicated_routes = config.Scan.mux_segments;
    functional_segments;
  }

let full_scan ?(chains = 1) (c : Circuit.t) =
  if Circuit.dff_count c = 0 then
    invalid_arg "Tpi.full_scan: circuit has no flip-flops";
  let b = Builder.of_circuit c in
  let scan_mode = Builder.add_input ~name:"scan_mode" b in
  let scan_mode_n = Builder.add_gate ~name:"scan_mode_n" b Gate.Not [ scan_mode ] in
  let st =
    {
      b;
      scan_mode;
      scan_mode_n;
      constraints = [ (scan_mode, V3.One) ];
      never_constrain = [];
      protected = [];
      test_points = 0;
      mux_segments = 0;
      tp_cache = Hashtbl.create 16;
      values = [||];
      values_valid = false;
      fanout = [||];
      fanout_valid = false;
    }
  in
  let parts = partition_ffs c.Circuit.dffs (max 1 chains) in
  let chains =
    List.mapi
      (fun index ffs ->
        let scan_in =
          Builder.add_input ~name:(Printf.sprintf "scan_in%d" index) st.b
        in
        let segments = ref [] and src = ref scan_in in
        List.iter
          (fun ff ->
            segments := add_mux st ~src:!src ~ff :: !segments;
            src := ff)
          ffs;
        let ffs_arr = Array.of_list ffs in
        {
          Scan.index;
          scan_in;
          scan_out = ffs_arr.(Array.length ffs_arr - 1);
          ffs = ffs_arr;
          segments = Array.of_list (List.rev !segments);
        })
      parts
  in
  List.iter
    (fun ch ->
      if not (Array.exists (fun o -> o = ch.Scan.scan_out) c.Circuit.outputs)
      then Builder.mark_output st.b ch.Scan.scan_out)
    chains;
  let scanned = Builder.freeze st.b in
  ( scanned,
    {
      Scan.scan_mode;
      constraints = st.constraints;
      chains = Array.of_list chains;
      test_points = 0;
      mux_segments = st.mux_segments;
    } )
