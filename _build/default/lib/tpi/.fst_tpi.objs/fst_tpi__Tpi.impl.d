lib/tpi/tpi.ml: Array Builder Circuit Fst_gen Fst_logic Fst_netlist Gate Hashtbl List Printf Scan Set V3
