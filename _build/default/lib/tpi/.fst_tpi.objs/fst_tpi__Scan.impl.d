lib/tpi/scan.ml: Array Circuit Fmt Fst_logic Fst_netlist Fst_sim List Printf Sim String V3
