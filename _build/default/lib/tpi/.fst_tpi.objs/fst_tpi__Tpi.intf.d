lib/tpi/tpi.mli: Circuit Fst_netlist Scan
