lib/tpi/scan.mli: Circuit Fmt Fst_logic Fst_netlist Stdlib V3
