(** Test point insertion: building functional scan chains.

    Following Lin et al. (DAC'97), a scan path between two flip-flops is
    established over an existing combinational path whose side inputs are
    forced to non-controlling values during scan mode — by assigning free
    primary inputs where a shallow justification finds one, and by inserting
    control test points (an [AND] with inverted scan-enable to force 0, an
    [OR] with scan-enable to force 1) otherwise. Flip-flop pairs with no
    usable combinational path fall back to an inserted scan multiplexer.

    Chains are formed greedily: within each partition the next flip-flop is
    the one reachable over the shortest sensitizable path, which maximizes
    functional-path reuse while keeping the ordering otherwise arbitrary
    (the flexibility the paper leaves to the designer). *)

open Fst_netlist

(** Chain ordering policy. The paper leaves the ordering "arbitrary" except
    where functional paths are established and notes that different
    orderings move fault locations around; these are the choices a designer
    gets. *)
type ordering =
  | Greedy_functional
      (** next flip-flop = cheapest sensitizable path (maximizes
          functional-path reuse; the default) *)
  | Natural  (** flip-flop declaration order *)
  | Shuffled of int64  (** a seeded random permutation *)

type options = {
  chains : int;  (** number of scan chains to build *)
  justify_depth : int;
      (** recursion budget for justifying a side input from primary inputs
          before falling back to a test point *)
  max_path_cost : int;
      (** sensitization-cost budget per segment (1 per gate crossed plus 1
          per side pin to force); dearer paths fall back to a scan
          multiplexer *)
  ordering : ordering;
}

val default_options : options

(** [insert ?options c] returns the scanned circuit (scan-enable and
    scan-in inputs, test points, multiplexers, scan-out outputs added; all
    original net ids preserved) together with its {!Scan.config}. *)
val insert : ?options:options -> Circuit.t -> Circuit.t * Scan.config

(** Area accounting relative to the pre-scan circuit. *)
type overhead = {
  extra_gates : int;  (** gates added (test points, muxes, inverter) *)
  dedicated_routes : int;
      (** segments needing new flip-flop to flip-flop wiring (mux
          segments); functional segments reuse mission routing *)
  functional_segments : int;
}

val overhead : Circuit.t -> Scan.config -> before:Circuit.t -> overhead

(** [full_scan c] applies conventional MUXed-scan to every flip-flop (the
    baseline of Figure 1a): every segment is a multiplexer. *)
val full_scan : ?chains:int -> Circuit.t -> Circuit.t * Scan.config
