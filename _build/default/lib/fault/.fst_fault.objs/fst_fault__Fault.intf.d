lib/fault/fault.mli: Circuit Fmt Fst_netlist
