lib/fault/fault.ml: Array Bool Circuit Fmt Fst_logic Fst_netlist Gate Hashtbl List Printf Stdlib V3
