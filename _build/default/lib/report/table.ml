type align = Left | Right

type line = Row of string list | Rule

type t = {
  title : string;
  columns : (string * align) list;
  mutable lines : line list; (* reversed *)
}

let create ~title columns = { title; columns; lines = [] }

let row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.row: %d cells for %d columns" (List.length cells)
         (List.length t.columns));
  t.lines <- Row cells :: t.lines

let rule t = t.lines <- Rule :: t.lines

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let buf = Buffer.create 256 in
  let line s = Buffer.add_string buf s; Buffer.add_char buf '\n' in
  let lines = List.rev t.lines in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w line ->
            match line with
            | Row cells -> max w (String.length (List.nth cells i))
            | Rule -> w)
          (String.length h) lines)
      headers
  in
  let render_cells cells =
    List.map2 (fun (c, (_, a)) w -> pad a w c)
      (List.combine cells t.columns)
      widths
    |> String.concat "  "
  in
  line "";
  line t.title;
  let header_line = render_cells headers in
  line header_line;
  line (String.make (String.length header_line) '-');
  List.iter
    (fun l ->
      match l with
      | Row cells -> line (render_cells cells)
      | Rule -> line (String.make (String.length header_line) '-'))
    lines;
  Buffer.contents buf

let print t = print_string (render t)

let cell_int = string_of_int
let cell_pct p = Printf.sprintf "%.1f%%" p

let cell_int_pct n ~of_ =
  if of_ = 0 then Printf.sprintf "%d" n
  else Printf.sprintf "%d (%.1f%%)" n (100.0 *. float_of_int n /. float_of_int of_)

let cell_seconds s = Printf.sprintf "%.2fs" s
