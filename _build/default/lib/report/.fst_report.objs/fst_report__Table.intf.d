lib/report/table.mli:
