(** Plain-text tables in the style of the paper's result tables. *)

type align = Left | Right

type t

(** [create ~title columns] starts a table; each column is (header,
    alignment). *)
val create : title:string -> (string * align) list -> t

(** [row t cells] appends a row; the cell count must match the column
    count. *)
val row : t -> string list -> unit

(** [rule t] appends a horizontal rule (printed before the next row,
    typically the totals row). *)
val rule : t -> unit

(** [render t] produces the aligned textual table. *)
val render : t -> string

(** [print t] writes [render t] to stdout. *)
val print : t -> unit

(** Cell helpers. *)

val cell_int : int -> string
val cell_pct : float -> string

(** [cell_int_pct n ~of_] renders ["n (p%)"]. *)
val cell_int_pct : int -> of_:int -> string

val cell_seconds : float -> string
