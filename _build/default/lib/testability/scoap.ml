open Fst_logic
open Fst_netlist

type t = { cc0 : int array; cc1 : int array; obs : int array }

let infinite = 1_000_000_000
let ( +! ) a b = if a >= infinite || b >= infinite then infinite else a + b

let cc m net = function
  | V3.Zero -> m.cc0.(net)
  | V3.One -> m.cc1.(net)
  | V3.X -> min m.cc0.(net) m.cc1.(net)

let sum_cc get fi = Array.fold_left (fun acc f -> acc +! get f) 0 fi

let min_cc get fi =
  Array.fold_left (fun acc f -> min acc (get f)) infinite fi

(* Parity-style controllability for xor chains: the cheapest assignment of
   the fanins yielding even/odd numbers of ones, folded pairwise. *)
let xor_cc cc0 cc1 fi =
  let even = ref 0 and odd = ref infinite in
  Array.iter
    (fun f ->
      let e = min (!even +! cc0.(f)) (!odd +! cc1.(f)) in
      let o = min (!even +! cc1.(f)) (!odd +! cc0.(f)) in
      even := e;
      odd := o)
    fi;
  (!even, !odd)

let controllability (v : View.t) =
  let c = v.View.circuit in
  let n = Circuit.num_nets c in
  let cc0 = Array.make n infinite and cc1 = Array.make n infinite in
  let source i =
    if v.View.free.(i) then begin
      cc0.(i) <- 1;
      cc1.(i) <- 1
    end
    else
      match v.View.fixed.(i) with
      | Some V3.Zero -> cc0.(i) <- 0
      | Some V3.One -> cc1.(i) <- 0
      | Some V3.X | None -> ()
  in
  Array.iter
    (fun i ->
      match Circuit.node c i with
      | Circuit.Input | Circuit.Dff _ -> source i
      | Circuit.Const V3.Zero -> cc0.(i) <- 0
      | Circuit.Const V3.One -> cc1.(i) <- 0
      | Circuit.Const V3.X -> ()
      | Circuit.Gate (g, fi) -> (
        let c0 f = cc0.(f) and c1 f = cc1.(f) in
        match g with
        | Gate.And ->
          cc1.(i) <- sum_cc c1 fi +! 1;
          cc0.(i) <- min_cc c0 fi +! 1
        | Gate.Nand ->
          cc0.(i) <- sum_cc c1 fi +! 1;
          cc1.(i) <- min_cc c0 fi +! 1
        | Gate.Or ->
          cc0.(i) <- sum_cc c0 fi +! 1;
          cc1.(i) <- min_cc c1 fi +! 1
        | Gate.Nor ->
          cc1.(i) <- sum_cc c0 fi +! 1;
          cc0.(i) <- min_cc c1 fi +! 1
        | Gate.Not ->
          cc0.(i) <- c1 fi.(0) +! 1;
          cc1.(i) <- c0 fi.(0) +! 1
        | Gate.Buf ->
          cc0.(i) <- c0 fi.(0) +! 1;
          cc1.(i) <- c1 fi.(0) +! 1
        | Gate.Xor ->
          let even, odd = xor_cc cc0 cc1 fi in
          cc0.(i) <- even +! 1;
          cc1.(i) <- odd +! 1
        | Gate.Xnor ->
          let even, odd = xor_cc cc0 cc1 fi in
          cc1.(i) <- even +! 1;
          cc0.(i) <- odd +! 1))
    c.Circuit.topo;
  (cc0, cc1)

(* Cost to make every side input of [node] transparent for pin [pin]. *)
let side_cost cc0 cc1 g fi pin =
  let cost = ref 0 in
  Array.iteri
    (fun j f ->
      if j <> pin then
        let extra =
          match g with
          | Gate.And | Gate.Nand -> cc1.(f)
          | Gate.Or | Gate.Nor -> cc0.(f)
          | Gate.Xor | Gate.Xnor -> min cc0.(f) cc1.(f)
          | Gate.Not | Gate.Buf -> 0
        in
        cost := !cost +! extra)
    fi;
  !cost

let observability (v : View.t) cc0 cc1 =
  let c = v.View.circuit in
  let n = Circuit.num_nets c in
  let obs = Array.make n infinite in
  Array.iter
    (fun op -> obs.(View.obs_source_net v op) <- 0)
    v.View.observe;
  (* Walk gates from outputs toward inputs: reverse topological order. *)
  for k = Array.length c.Circuit.topo - 1 downto 0 do
    let i = c.Circuit.topo.(k) in
    match Circuit.node c i with
    | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
    | Circuit.Gate (g, fi) ->
      if obs.(i) < infinite then
        Array.iteri
          (fun pin f ->
            let through = obs.(i) +! side_cost cc0 cc1 g fi pin +! 1 in
            if through < obs.(f) then obs.(f) <- through)
          fi
  done;
  obs

let compute v =
  let cc0, cc1 = controllability v in
  let obs = observability v cc0 cc1 in
  { cc0; cc1; obs }
