(** SCOAP testability measures over a combinational {!Fst_netlist.View.t}.

    Controllabilities [cc0]/[cc1] estimate the effort to set a net to 0/1;
    observability [obs] estimates the effort to propagate a net's value to
    an observation point. Free inputs cost 1, tied nets cost 0 for their
    value and {!infinite} for the opposite, unassignable sources are
    {!infinite} both ways. Values saturate at {!infinite}. Used to guide
    PODEM backtrace and D-frontier selection. *)

type t = { cc0 : int array; cc1 : int array; obs : int array }

val infinite : int

(** Saturating addition that never exceeds {!infinite}. *)
val ( +! ) : int -> int -> int

val compute : Fst_netlist.View.t -> t

(** [cc m net v] is the controllability of value [v] on [net] ([X] maps to
    the cheaper of the two). *)
val cc : t -> int -> Fst_logic.V3.t -> int
