lib/testability/scoap.ml: Array Circuit Fst_logic Fst_netlist Gate V3 View
