lib/testability/scoap.mli: Fst_logic Fst_netlist
