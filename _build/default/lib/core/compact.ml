open Fst_fsim

let coverage c ~faults ~observe ~blocks =
  let outcome = Fsim.Parallel.detect_dropping c ~faults ~observe ~stimuli:blocks in
  Array.fold_left (fun acc o -> if o = None then acc else acc + 1) 0 outcome

(* Reverse-order restoration: walking the set backwards with fault
   dropping credits each detection to the *last* sequence that achieves
   it; sequences credited with nothing are dropped. *)
let reverse_order c ~faults ~observe ~blocks =
  let n = List.length blocks in
  let reversed = List.rev blocks in
  let outcome =
    Fsim.Parallel.detect_dropping c ~faults ~observe ~stimuli:reversed
  in
  let keeps = Array.make n false in
  let detected = ref 0 in
  Array.iter
    (function
      | Some (rev_block, _) ->
        incr detected;
        keeps.(n - 1 - rev_block) <- true
      | None -> ())
    outcome;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if keeps.(i) then kept := i :: !kept
  done;
  (!kept, !detected)
