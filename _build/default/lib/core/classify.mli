(** Section 3 of the paper: finding the faults that affect the functional
    scan chain.

    For every fault, the forward implication cone under scan-mode constants
    is computed (event-driven three-valued propagation of the faulty
    machine against the good scan-mode values). The chain locations the
    fault touches are collected and the fault is placed in one of three
    categories:

    - {b Category 1}: a net on the scan chain becomes a constant 0/1 — the
      alternating sequence detects it. (Extension over the paper: a binary
      flip of an xor-family side input, which inverts the segment without
      constants, is also category 1 since the alternating response is
      complemented.)
    - {b Category 2}: a side input of the chain becomes unknown — the
      chain's behaviour is nondeterministic and the alternating sequence
      may miss it. These are the {e hard} faults.
    - {b Category 3}: the chain is untouched.

    Category 2 takes priority when both occur, as in the paper. *)

open Fst_netlist
open Fst_fault
open Fst_tpi

type category = Cat1 | Cat2 | Cat3

type location_kind = Forced_constant | Side_unknown | Side_inverted

type info = {
  fault : Fault.t;
  category : category;
  locations : (int * int * location_kind) list;
      (** (chain index, segment index, kind), ordered by (chain, segment),
          de-duplicated; empty iff category 3 *)
}

type t = {
  infos : info array;  (** parallel to the fault array given to [run] *)
  easy : int array;  (** indices of category-1 faults *)
  hard : int array;  (** indices of category-2 faults *)
  affecting : int;  (** category 1 + category 2 *)
}

(** [run c config faults] classifies every fault of [faults] against the
    scan chains of [config]. *)
val run : Circuit.t -> Scan.config -> Fault.t array -> t

val pp_category : category Fmt.t
