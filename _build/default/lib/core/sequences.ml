open Fst_logic
open Fst_netlist
open Fst_atpg
open Fst_tpi

let max_chain_length (config : Scan.config) =
  Array.fold_left
    (fun m ch -> max m (Array.length ch.Scan.ffs))
    0 config.Scan.chains

let scan_in_nets (config : Scan.config) =
  Array.to_list config.Scan.chains |> List.map (fun ch -> ch.Scan.scan_in)

(* Per-chain scan-in slot at load cycle [t] of a [load] cycle window: chains
   shorter than the window idle first so that every chain finishes loading
   on the same edge. *)
let load_slot (ch : Scan.chain) stream ~load ~t =
  let len = Array.length ch.Scan.ffs in
  if t < load - len then (ch.Scan.scan_in, V3.X)
  else (ch.Scan.scan_in, stream.(t - (load - len)))

let alternating c config ~repeats =
  ignore c;
  let l = max_chain_length config in
  let shift_cycles = (repeats * l) + 4 in
  let total = shift_cycles + l in
  Array.init total (fun t ->
      let base = if t = 0 then config.Scan.constraints else [] in
      let v = if t < shift_cycles then V3.of_bool (t / 2 mod 2 = 1) else V3.X in
      base @ List.map (fun si -> (si, v)) (scan_in_nets config))

let desired_of_chain (ch : Scan.chain) ff_values =
  Array.map
    (fun ff ->
      match List.assoc_opt ff ff_values with Some v -> v | None -> V3.X)
    ch.Scan.ffs

let of_comb_test c config ~ff_values ~pi_values =
  ignore c;
  let l = max_chain_length config in
  let scan_ins = scan_in_nets config in
  let pi_scan, pi_other =
    List.partition (fun (n, _) -> List.mem n scan_ins) pi_values
  in
  let streams =
    Array.map
      (fun ch ->
        (ch, Scan.scan_in_stream ch ~values:(desired_of_chain ch ff_values)))
      config.Scan.chains
  in
  let total = (2 * l) + 1 in
  Array.init total (fun t ->
      if t < l then
        let base = if t = 0 then config.Scan.constraints @ pi_other else [] in
        base
        @ (Array.to_list streams
          |> List.map (fun (ch, stream) -> load_slot ch stream ~load:l ~t))
      else if t = l then
        (* Apply cycle: scan-ins take their test values (they are free
           inputs of the combinational model), defaulting to X. *)
        List.map
          (fun si ->
            match List.assoc_opt si pi_scan with
            | Some v -> (si, v)
            | None -> (si, V3.X))
          scan_ins
      else [])

let free_pis c (config : Scan.config) =
  let constrained = List.map fst config.Scan.constraints in
  Array.to_list c.Circuit.inputs
  |> List.filter (fun i -> not (List.mem i constrained))

let of_seq_test c config (test : Seq.test) =
  let l = max_chain_length config in
  let free = free_pis c config in
  let streams =
    Array.map
      (fun ch ->
        (ch, Scan.scan_in_stream ch ~values:(desired_of_chain ch test.Seq.init_state)))
      config.Scan.chains
  in
  let frames = test.Seq.frames in
  let total = l + frames + l in
  Array.init total (fun t ->
      if t < l then
        let base = if t = 0 then config.Scan.constraints else [] in
        base
        @ (Array.to_list streams
          |> List.map (fun (ch, stream) -> load_slot ch stream ~load:l ~t))
      else if t < l + frames then
        (* Frame cycles: every free input is reset each cycle (X unless the
           test assigns it), including the scan-ins. *)
        let assigns = test.Seq.pi_frames.(t - l) in
        List.map
          (fun pi ->
            match List.assoc_opt pi assigns with
            | Some v -> (pi, v)
            | None -> (pi, V3.X))
          free
      else if t = l + frames then List.map (fun pi -> (pi, V3.X)) free
      else [])

(* Scan test of the functional logic: load, one capture with scan-enable
   low, unload. The scan-mode constraints are released for the capture
   cycle (they only exist to sensitize the chain) and re-asserted for the
   unload. *)
let of_capture_test c config ~ff_values ~pi_values =
  let l = max_chain_length config in
  let scan_ins = scan_in_nets config in
  (* In functional mode every input except the scan-enable is usable —
     including the ones TPI constrains during scan mode. *)
  let usable =
    Array.to_list c.Circuit.inputs
    |> List.filter (fun i ->
           i <> config.Scan.scan_mode && not (List.mem i scan_ins))
  in
  let streams =
    Array.map
      (fun ch ->
        (ch, Scan.scan_in_stream ch ~values:(desired_of_chain ch ff_values)))
      config.Scan.chains
  in
  let total = l + 1 + (l + 1) in
  Array.init total (fun t ->
      if t < l then
        let base = if t = 0 then config.Scan.constraints else [] in
        base
        @ (Array.to_list streams
          |> List.map (fun (ch, stream) -> load_slot ch stream ~load:l ~t))
      else if t = l then
        (* Capture: leave scan mode, apply the test's input values; every
           other input reads as the test left it or X. *)
        ((config.Scan.scan_mode, V3.Zero)
         :: List.map
              (fun pi ->
                match List.assoc_opt pi pi_values with
                | Some v -> (pi, v)
                | None -> (pi, V3.X))
              usable)
        @ List.map (fun si -> (si, V3.X)) scan_ins
      else if t = l + 1 then
        (* Back into scan mode for the unload. *)
        config.Scan.constraints @ List.map (fun si -> (si, V3.X)) scan_ins
      else [])

let concat stimuli = Array.concat stimuli
