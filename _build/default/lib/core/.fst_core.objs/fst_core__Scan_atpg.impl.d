lib/core/scan_atpg.ml: Array Circuit Fault Fsim Fst_atpg Fst_fault Fst_fsim Fst_gen Fst_logic Fst_netlist Fst_testability Fst_tpi Hashtbl List Podem Rtpg Scan Sequences Sys V3 View
