lib/core/classify.ml: Array Circuit Fault Fmt Fst_fault Fst_logic Fst_netlist Fst_tpi Gate List Queue Scan V3
