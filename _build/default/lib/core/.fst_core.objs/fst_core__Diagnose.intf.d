lib/core/diagnose.mli: Circuit Fmt Fsim Fst_fault Fst_fsim Fst_logic Fst_netlist Fst_tpi Scan V3
