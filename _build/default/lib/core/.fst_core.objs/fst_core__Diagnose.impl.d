lib/core/diagnose.ml: Array Circuit Fmt Fsim Fst_fsim Fst_logic Fst_netlist Fst_sim Fst_tpi Hashtbl Int List Option Scan Sequences V3
