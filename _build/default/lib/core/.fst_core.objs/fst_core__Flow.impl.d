lib/core/flow.ml: Array Circuit Classify Fault Fsim Fst_atpg Fst_fault Fst_fsim Fst_gen Fst_netlist Fst_testability Fst_tpi Group Hashtbl Int List Podem Rtpg Scan Seq Sequences Sys View
