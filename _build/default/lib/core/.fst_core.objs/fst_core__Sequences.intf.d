lib/core/sequences.mli: Circuit Fsim Fst_atpg Fst_fsim Fst_logic Fst_netlist Fst_tpi Scan Seq V3
