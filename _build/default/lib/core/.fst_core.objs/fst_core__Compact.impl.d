lib/core/compact.ml: Array Fsim Fst_fsim List
