lib/core/scan_atpg.mli: Circuit Fault Fst_fault Fst_netlist Fst_tpi Scan
