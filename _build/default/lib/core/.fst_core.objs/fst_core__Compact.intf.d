lib/core/compact.mli: Circuit Fault Fsim Fst_fault Fst_fsim Fst_netlist
