lib/core/dictionary.ml: Array Fsim Fst_fsim Hashtbl Int List
