lib/core/classify.mli: Circuit Fault Fmt Fst_fault Fst_netlist Fst_tpi Scan
