lib/core/flow.mli: Circuit Classify Fault Fst_fault Fst_netlist Fst_tpi Scan
