lib/core/group.ml: Hashtbl Int List Option
