lib/core/dictionary.mli: Circuit Fault Fsim Fst_fault Fst_fsim Fst_netlist
