lib/core/group.mli:
