lib/core/sequences.ml: Array Circuit Fst_atpg Fst_logic Fst_netlist Fst_tpi List Scan Seq V3
