(** Scan-chain failure diagnosis.

    When the chain test of this library (or production test) fails, the
    next question is {e where} the chain is broken and {e how}. This module
    ranks fault hypotheses by comparing the observed scan-out stream
    against an analytic shift-register model of each chain:

    - [Stuck v]: the data entering position [segment] is pinned to [v]
      (the tail of the chain repeats a constant) — the classic symptom of
      a category-1 fault;
    - [Inverted]: the segment flips polarity (an xor side-input defect);
    - [Skip n]: the chain acts [n] positions shorter — the paper's
      Figure 2 symptom, where a side-input fault re-routes the scan path
      around a stretch of flip-flops.

    The observed response may come from silicon or, as in the tests and
    examples here, from fault simulation of an injected defect. *)

open Fst_logic
open Fst_netlist
open Fst_fsim
open Fst_tpi

type behavior =
  | Stuck of bool  (** data into the faulty position pinned to 0/1 *)
  | Inverted  (** polarity flip at the faulty position *)
  | Skip of { count : int; invert : bool }
      (** chain shortened by [count] positions, with residual parity *)

type hypothesis = { chain : int; segment : int; behavior : behavior }

type verdict = {
  hypothesis : hypothesis;
  mismatches : int;  (** cycles where prediction and observation differ *)
  explained : int;  (** cycles where both are binary and agree *)
}

(** [stimulus c config] is the diagnostic sequence: rounds of a walking
    one plus the alternating pattern, separated by functional capture
    cycles (scan-enable low for one cycle) — the captures give the
    per-position observability that scan-out alone cannot. *)
val stimulus : Circuit.t -> Scan.config -> Fsim.stimulus

(** [observe_scan_outs c config ~fault stim] simulates the (faulty) machine
    and records, per chain, its scan-out value per cycle. *)
val observe_scan_outs :
  Circuit.t -> Scan.config -> fault:Fst_fault.Fault.t option ->
  Fsim.stimulus -> V3.t array array

(** [diagnose c config ~stimulus ~observed] ranks all hypotheses (every
    chain, segment and behaviour) by mismatch count, best first, using a
    fault-free simulation of [c] as the reference. Capture cycles are
    recognized by scan-enable driven low in the stimulus. Healthy chains
    contribute no verdicts. *)
val diagnose :
  Circuit.t ->
  Scan.config ->
  stimulus:Fsim.stimulus ->
  observed:V3.t array array ->
  verdict list

(** [diagnose_fault c config fault] is the end-to-end convenience: build
    the stimulus, simulate the fault, diagnose. *)
val diagnose_fault :
  Circuit.t -> Scan.config -> Fst_fault.Fault.t -> verdict list

val pp_verdict : verdict Fmt.t
