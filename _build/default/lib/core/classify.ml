open Fst_logic
open Fst_netlist
open Fst_fault
open Fst_tpi

type category = Cat1 | Cat2 | Cat3
type location_kind = Forced_constant | Side_unknown | Side_inverted

type info = {
  fault : Fault.t;
  category : category;
  locations : (int * int * location_kind) list;
}

type t = {
  infos : info array;
  easy : int array;
  hard : int array;
  affecting : int;
}

let pp_category ppf = function
  | Cat1 -> Fmt.string ppf "category-1"
  | Cat2 -> Fmt.string ppf "category-2"
  | Cat3 -> Fmt.string ppf "category-3"

(* Shared, stamp-reset scratch for the per-fault propagation. *)
type env = {
  c : Circuit.t;
  good : V3.t array;
  chain_locs : (int * int) list array; (* per net *)
  side_of : (int * int * int * int * bool) list array;
      (* per net: (chain, seg, node, pin, consumer-is-xor-family) *)
  fv : V3.t array;
  stamp : int array;
  updates : int array;
  mutable cur : int;
  mutable changed : int list;
}

let build_env c config =
  let n = Circuit.num_nets c in
  let side_of = Array.make n [] in
  Array.iter
    (fun ch ->
      Array.iteri
        (fun seg _ ->
          List.iter
            (fun (node, pin, net) ->
              let is_xor =
                match Circuit.node c node with
                | Circuit.Gate ((Gate.Xor | Gate.Xnor), _) -> true
                | Circuit.Gate _ | Circuit.Input | Circuit.Const _
                | Circuit.Dff _ -> false
              in
              side_of.(net) <-
                (ch.Scan.index, seg, node, pin, is_xor) :: side_of.(net))
            (Scan.side_pins c config ~chain:ch.Scan.index ~segment:seg))
        ch.Scan.segments)
    config.Scan.chains;
  {
    c;
    good = Scan.scan_mode_values c config;
    chain_locs = Scan.chain_locations c config;
    side_of;
    fv = Array.make n V3.X;
    stamp = Array.make n (-1);
    updates = Array.make n 0;
    cur = -1;
    changed = [];
  }

let get env n = if env.stamp.(n) = env.cur then env.fv.(n) else env.good.(n)

let set env n v =
  if env.stamp.(n) <> env.cur then begin
    env.stamp.(n) <- env.cur;
    env.updates.(n) <- 0;
    env.changed <- n :: env.changed
  end;
  env.fv.(n) <- v

(* Steady-state faulty value of node [i] under the scan-mode constants;
   flip-flops are transparent (the analysis is over the scan-mode fixpoint,
   as in the paper's Figure 3 where implications cross flip-flops). *)
let eval_faulty env ~stem_net ~stem_val ~branch_node ~branch_pin ~branch_val i =
  let read node pin net =
    if node = branch_node && pin = branch_pin then branch_val else get env net
  in
  let v =
    match Circuit.node env.c i with
    | Circuit.Input -> env.good.(i)
    | Circuit.Const k -> k
    | Circuit.Dff d -> read i 0 d
    | Circuit.Gate (g, fi) -> Gate.eval g (Array.mapi (fun pin f -> read i pin f) fi)
  in
  if i = stem_net then stem_val else v

let propagate env (fault : Fault.t) =
  env.cur <- env.cur + 1;
  env.changed <- [];
  let stem_net, stem_val, branch_node, branch_pin, branch_val =
    match fault.Fault.site with
    | Fault.Stem n -> (n, V3.of_bool fault.Fault.stuck, -1, -1, V3.X)
    | Fault.Branch { node; pin } ->
      (-1, V3.X, node, pin, V3.of_bool fault.Fault.stuck)
  in
  let queue = Queue.create () in
  let enqueue_consumers n =
    Array.iter (fun consumer -> Queue.add consumer queue) env.c.Circuit.fanout.(n)
  in
  (match fault.Fault.site with
   | Fault.Stem n ->
     if not (V3.equal env.good.(n) stem_val) then begin
       set env n stem_val;
       enqueue_consumers n
     end
   | Fault.Branch { node; _ } -> Queue.add node queue);
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let old = get env i in
    let v =
      eval_faulty env ~stem_net ~stem_val ~branch_node ~branch_pin ~branch_val i
    in
    if not (V3.equal v old) then begin
      (* Widen oscillating feedback (possible through flip-flop loops in
         the steady-state view) to unknown; conservative for category 2. *)
      let v =
        if env.stamp.(i) = env.cur && env.updates.(i) >= 2 then V3.X else v
      in
      if not (V3.equal v old) then begin
        set env i v;
        env.updates.(i) <- env.updates.(i) + 1;
        enqueue_consumers i
      end
    end
  done

let locations_of env (fault : Fault.t) =
  let locs = ref [] in
  let add chain seg kind = locs := (chain, seg, kind) :: !locs in
  List.iter
    (fun n ->
      let v = get env n in
      if V3.is_binary v then
        List.iter (fun (chain, seg) -> add chain seg Forced_constant) env.chain_locs.(n);
      List.iter
        (fun (chain, seg, _node, _pin, is_xor) ->
          match v with
          | V3.X -> add chain seg Side_unknown
          | V3.Zero | V3.One ->
            (* A binary flip of an xor-family side input inverts the
               segment without forcing constants. *)
            if is_xor && V3.is_binary env.good.(n) && not (V3.equal v env.good.(n))
            then add chain seg Side_inverted)
        env.side_of.(n))
    env.changed;
  (* A branch fault sitting directly on an xor-family side pin inverts the
     segment without changing any net value. *)
  (match fault.Fault.site with
   | Fault.Branch { node; pin } ->
     let src = (Circuit.fanins env.c node).(pin) in
     List.iter
       (fun (chain, seg, n', p', is_xor) ->
         if n' = node && p' = pin && is_xor then
           let stuck = V3.of_bool fault.Fault.stuck in
           if V3.is_binary env.good.(src) && not (V3.equal env.good.(src) stuck)
           then add chain seg Side_inverted)
       env.side_of.(src)
   | Fault.Stem _ -> ());
  List.sort_uniq compare !locs

let categorize locations =
  if locations = [] then Cat3
  else if List.exists (fun (_, _, k) -> k = Side_unknown) locations then Cat2
  else Cat1

let run c config faults =
  let env = build_env c config in
  let infos =
    Array.map
      (fun fault ->
        propagate env fault;
        let locations = locations_of env fault in
        { fault; category = categorize locations; locations })
      faults
  in
  let idx cat =
    let acc = ref [] in
    Array.iteri (fun i info -> if info.category = cat then acc := i :: !acc) infos;
    Array.of_list (List.rev !acc)
  in
  let easy = idx Cat1 and hard = idx Cat2 in
  { infos; easy; hard; affecting = Array.length easy + Array.length hard }
