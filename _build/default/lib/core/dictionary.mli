(** Fault dictionaries for logic diagnosis.

    After the chain test ({!Flow}) and the scan test ({!Scan_atpg}) a
    failing die produces a pass/fail signature over the applied sequences.
    A fault dictionary, built once by fault simulation, maps each modeled
    fault to its expected signature; matching the observed signature
    against the dictionary ranks candidate defects — the classic
    cause-effect diagnosis companion to the chain-level ranking of
    {!Diagnose}. *)

open Fst_netlist
open Fst_fault
open Fst_fsim

type t

(** [build c ~faults ~observe ~blocks] fault-simulates every fault against
    every sequence (no dropping — full signatures) and stores the
    pass/fail matrix. *)
val build :
  Circuit.t ->
  faults:Fault.t array ->
  observe:int array ->
  blocks:Fsim.stimulus list ->
  t

val num_blocks : t -> int

(** [signature d ~fault_index] is the fail set of one fault (indices of
    the sequences that detect it). *)
val signature : t -> fault_index:int -> int list

(** [observe_defect c d ~fault ~blocks] produces the signature an actual
    defect (not necessarily in the dictionary) shows on the tester. *)
val observe_defect :
  Circuit.t -> t -> fault:Fault.t -> blocks:Fsim.stimulus list -> int list

(** [rank d ~observed] ranks dictionary faults by signature distance to
    the observed fail set: (fault index, mismatching sequence count),
    best first. Exact matches come out with distance 0. *)
val rank : t -> observed:int list -> (int * int) list

(** [distinguishable d] counts the equivalence classes of identical
    signatures — the diagnostic resolution of the test set. *)
val distinguishable : t -> int
