open Fst_fsim

type t = {
  blocks : int;
  observe : int array;
  (* per fault: sorted list of failing sequence indices *)
  signatures : int list array;
}

(* Full (no-dropping) signatures: simulate each block independently so a
   fault's entry records every sequence that detects it. *)
let build c ~faults ~observe ~blocks =
  let n = Array.length faults in
  let fails = Array.make n [] in
  List.iteri
    (fun b stim ->
      let outcome = Fsim.Parallel.detect_all c ~faults ~observe stim in
      Array.iteri
        (fun i o -> if o <> None then fails.(i) <- b :: fails.(i))
        outcome)
    blocks;
  { blocks = List.length blocks; observe; signatures = Array.map List.rev fails }

let num_blocks d = d.blocks
let signature d ~fault_index = d.signatures.(fault_index)

let observe_defect c d ~fault ~blocks =
  let fails = ref [] in
  List.iteri
    (fun b stim ->
      match
        Fsim.Parallel.detect_all c ~faults:[| fault |] ~observe:d.observe stim
      with
      | [| Some _ |] -> fails := b :: !fails
      | _ -> ())
    blocks;
  List.rev !fails

(* Symmetric difference size between two sorted lists. *)
let distance a b =
  let rec go a b acc =
    match a, b with
    | [], rest | rest, [] -> acc + List.length rest
    | x :: xs, y :: ys ->
      if x = y then go xs ys acc
      else if x < y then go xs b (acc + 1)
      else go a ys (acc + 1)
  in
  go a b 0

let rank d ~observed =
  let scored =
    Array.to_list
      (Array.mapi (fun i s -> (i, distance s observed)) d.signatures)
  in
  List.sort (fun (_, a) (_, b) -> Int.compare a b) scored

let distinguishable d =
  let seen = Hashtbl.create 64 in
  Array.iter (fun s -> Hashtbl.replace seen s ()) d.signatures;
  Hashtbl.length seen
