open Fst_logic
open Fst_netlist
open Fst_fsim
open Fst_tpi

type behavior = Stuck of bool | Inverted | Skip of { count : int; invert : bool }
type hypothesis = { chain : int; segment : int; behavior : behavior }
type verdict = { hypothesis : hypothesis; mismatches : int; explained : int }

let pp_behavior ppf = function
  | Stuck v -> Fmt.pf ppf "stuck-%d" (if v then 1 else 0)
  | Inverted -> Fmt.string ppf "inverted"
  | Skip { count; invert } ->
    Fmt.pf ppf "skip-%d%s" count (if invert then " (inverting)" else "")

let pp_verdict ppf v =
  Fmt.pf ppf "chain %d segment %d %a (%d mismatches, %d explained)"
    v.hypothesis.chain v.hypothesis.segment pp_behavior v.hypothesis.behavior
    v.mismatches v.explained

(* The shift pattern between captures: a walking one, then alternating. *)
let shift_pattern ~len t =
  let t = t mod ((2 * len) + 8) in
  if t = 0 then V3.One
  else if t < len then V3.Zero
  else V3.of_bool ((t - len) / 2 mod 2 = 1)

(* Scan-out alone cannot localize a stuck chain (every stuck position
   yields the same constant stream once the unknown power-up state has
   flushed), so the diagnostic sequence interleaves functional capture
   cycles: the flip-flops behind the break capture system data and unload
   it through the fault-free chain suffix, and the number of clean cycles
   after each capture reveals the break position. *)
type plan = { stim : Fsim.stimulus; captures : bool array }

let build_plan c config =
  let len = Sequences.max_chain_length config in
  let period = (2 * len) + 8 in
  let rounds = 4 in
  let total = rounds * (period + 1) in
  let captures = Array.make total false in
  (* Free inputs are pinned to a per-round pattern so the functional data
     captured between shift rounds is deterministic and diverse. *)
  let free_pis =
    Array.to_list c.Fst_netlist.Circuit.inputs
    |> List.filter (fun i ->
           (not (List.mem_assoc i config.Scan.constraints))
           && (not (Array.exists (fun ch -> ch.Scan.scan_in = i) config.Scan.chains))
           && i <> config.Scan.scan_mode)
  in
  let pinned round =
    List.mapi
      (fun k i ->
        let v =
          match round mod 4 with
          | 0 -> false
          | 1 -> true
          | 2 -> k land 1 = 0
          | _ -> k land 1 = 1
        in
        (i, V3.of_bool v))
      free_pis
  in
  let stim =
    Array.init total (fun t ->
        let round = t / (period + 1) in
        let in_round = t mod (period + 1) in
        let base =
          (if t = 0 then config.Scan.constraints else [])
          @ (if in_round = 0 then pinned round else [])
        in
        if in_round = period && t <> total - 1 then begin
          (* one functional capture cycle *)
          captures.(t) <- true;
          base @ [ (config.Scan.scan_mode, V3.Zero) ]
        end
        else
          base
          @ [ (config.Scan.scan_mode, V3.One) ]
          @ (Array.to_list config.Scan.chains
            |> List.map (fun ch -> (ch.Scan.scan_in, shift_pattern ~len in_round))))
  in
  { stim; captures }

let stimulus c config = (build_plan c config).stim

let observe_scan_outs c config ~fault stim =
  let outs = Array.map (fun ch -> ch.Scan.scan_out) config.Scan.chains in
  let rows = Fsim.Serial.trace c ~fault ~observe:outs stim in
  Array.init (Array.length outs) (fun k -> Array.map (fun row -> row.(k)) rows)

(* Per-chain good-machine reference: position values at every cycle. *)
let good_positions c (ch : Scan.chain) stim =
  let rows = Fsim.Serial.trace c ~fault:None ~observe:ch.Scan.ffs stim in
  Array.init (Array.length ch.Scan.ffs) (fun p ->
      Array.map (fun row -> row.(p)) rows)

let stream_of (ch : Scan.chain) stim =
  let current = ref V3.X in
  Array.map
    (fun assigns ->
      (match List.assoc_opt ch.Scan.scan_in assigns with
       | Some v -> current := v
       | None -> ());
      !current)
    stim

let apply_parity v invert = if invert then V3.bnot v else v

(* Predicted faulty scan-out under one hypothesis. Positions before the
   faulty segment equal the good machine; positions from it onward are
   recomputed: shifts go through the defective segment model, and capture
   cycles re-evaluate the actual functional logic over the hybrid state
   ([capture_row], good prefix + modeled faulty suffix), so the post-
   capture unload carries an exact positional signature. *)
let predict (ch : Scan.chain) ~plan ~good ~stream ~capture_row ~hypothesis =
  let len = Array.length ch.Scan.ffs in
  let seg_invert s = ch.Scan.segments.(s).Scan.invert in
  let p0 = hypothesis.segment in
  let state = Array.make len V3.X in
  (* [state.(q)] is meaningful for q >= p0 only; earlier positions read
     from the good-machine trace. *)
  let value_at q t = if q < p0 then good.(q).(t) else state.(q) in
  Array.mapi
    (fun t _ ->
      let out = if len - 1 < p0 then good.(len - 1).(t) else state.(len - 1) in
      let next =
        if plan.captures.(t) then begin
          (* capture cycle: evaluate the functional logic with the current
             hybrid state. At the defect position an output-stuck defect
             pins the capture as well; path defects leave it intact. *)
          let captured = capture_row ~t ~state ~p0 in
          Array.init len (fun q ->
              if q < p0 then V3.X
              else if q = p0 then (
                match hypothesis.behavior with
                | Stuck v -> V3.of_bool v
                | Inverted | Skip _ -> captured q)
              else captured q)
        end
        else
          Array.init len (fun q ->
              if q < p0 then V3.X (* unused *)
              else if q > p0 then
                apply_parity (value_at (q - 1) t) (seg_invert q)
              else (
                (* the defective segment *)
                let src = if p0 = 0 then stream.(t) else value_at (p0 - 1) t in
                match hypothesis.behavior with
                | Stuck v -> V3.of_bool v
                | Inverted -> V3.bnot (apply_parity src (seg_invert p0))
                | Skip { count; invert } ->
                  let j = p0 - 1 - count in
                  let far = if j >= 0 then value_at j t else stream.(t) in
                  apply_parity far invert))
      in
      Array.blit next 0 state 0 len;
      out)
    stream

let score ~predicted ~observed =
  let mismatches = ref 0 and explained = ref 0 in
  Array.iteri
    (fun t p ->
      let o = observed.(t) in
      if V3.is_binary p && V3.is_binary o then
        if V3.equal p o then incr explained else incr mismatches)
    predicted;
  (!mismatches, !explained)

let skip_counts = [ 1; 2; 3; 4; 8; 16 ]

let hypotheses_for (ch : Scan.chain) =
  let len = Array.length ch.Scan.ffs in
  List.concat
    (List.init len (fun segment ->
         let base =
           [
             { chain = ch.Scan.index; segment; behavior = Stuck false };
             { chain = ch.Scan.index; segment; behavior = Stuck true };
             { chain = ch.Scan.index; segment; behavior = Inverted };
           ]
         in
         let skips =
           List.concat_map
             (fun count ->
               if count <= segment then
                 [
                   { chain = ch.Scan.index; segment;
                     behavior = Skip { count; invert = false } };
                   { chain = ch.Scan.index; segment;
                     behavior = Skip { count; invert = true } };
                 ]
               else [])
             skip_counts
         in
         base @ skips))

(* Accumulated primary-input values per cycle (assignments persist). *)
let input_values c stim =
  let current = Hashtbl.create 16 in
  Array.map
    (fun assigns ->
      List.iter (fun (n, v) -> Hashtbl.replace current n v) assigns;
      Array.map
        (fun pi ->
          (pi, Option.value ~default:V3.X (Hashtbl.find_opt current pi)))
        c.Circuit.inputs)
    stim

let diagnose_with_plan c config ~plan ~observed =
  let verdicts = ref [] in
  let pis_at = input_values c plan.stim in
  (* Good-machine values of every flip-flop at every cycle, for the hybrid
     capture evaluation. *)
  let all_ffs = c.Circuit.dffs in
  let good_all = Fsim.Serial.trace c ~fault:None ~observe:all_ffs plan.stim in
  let ff_index = Hashtbl.create 64 in
  Array.iteri (fun i ff -> Hashtbl.replace ff_index ff i) all_ffs;
  let sim = Fst_sim.Sim.create c in
  Array.iteri
    (fun k ch ->
      let stream = stream_of ch plan.stim in
      let good = good_positions c ch plan.stim in
      let len = Array.length ch.Scan.ffs in
      let data_net_of q =
        match Circuit.node c ch.Scan.ffs.(q) with
        | Circuit.Dff d -> d
        | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false
      in
      (* Functional capture over the hybrid state: flip-flops outside the
         hypothesis region take their good-machine values; positions from
         [p0] on take the modeled faulty values. *)
      let capture_row ~t ~state ~p0 =
        Array.iter
          (fun (pi, v) -> Fst_sim.Sim.set_input c sim pi v)
          pis_at.(t);
        Array.iteri
          (fun i ff ->
            Fst_sim.Sim.set_ff c sim ff good_all.(t).(i))
          all_ffs;
        Array.iteri
          (fun q ff -> if q >= p0 then Fst_sim.Sim.set_ff c sim ff state.(q))
          ch.Scan.ffs;
        Fst_sim.Sim.eval_comb c sim;
        fun q -> Fst_sim.Sim.value sim (data_net_of q)
      in
      ignore ff_index;
      let healthy = Array.mapi (fun t _ -> good.(len - 1).(t)) stream in
      let mism, _ = score ~predicted:healthy ~observed:observed.(k) in
      if mism > 0 then
        List.iter
          (fun h ->
            let predicted =
              predict ch ~plan ~good ~stream ~capture_row ~hypothesis:h
            in
            let mismatches, explained =
              score ~predicted ~observed:observed.(k)
            in
            verdicts := { hypothesis = h; mismatches; explained } :: !verdicts)
          (hypotheses_for ch))
    config.Scan.chains;
  List.sort
    (fun a b ->
      match Int.compare a.mismatches b.mismatches with
      | 0 -> Int.compare b.explained a.explained
      | c -> c)
    !verdicts

let diagnose c config ~stimulus ~observed =
  (* Reconstruct the capture set from the stimulus: cycles that drive
     scan-enable low. *)
  let captures =
    Array.map
      (fun assigns ->
        match List.assoc_opt config.Scan.scan_mode assigns with
        | Some V3.Zero -> true
        | Some (V3.One | V3.X) | None -> false)
      stimulus
  in
  diagnose_with_plan c config ~plan:{ stim = stimulus; captures } ~observed

let diagnose_fault c config fault =
  let plan = build_plan c config in
  let observed = observe_scan_outs c config ~fault:(Some fault) plan.stim in
  diagnose_with_plan c config ~plan ~observed
