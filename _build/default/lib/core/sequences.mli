(** Realization of tests as scan-mode stimuli.

    Everything stays in scan mode for the whole sequence, as the paper
    requires: the constrained inputs are pinned at cycle 0 and never
    released; loading and unloading are plain shift cycles. *)

open Fst_logic
open Fst_netlist
open Fst_fsim
open Fst_atpg
open Fst_tpi

(** [max_chain_length config] is the longest chain. *)
val max_chain_length : Scan.config -> int

(** [alternating c config ~repeats] is the traditional chain test: the
    [00110011…] pattern shifted through every chain for
    [repeats * max length + 4] cycles, then flushed for one more chain
    length so the tail reaches the scan-outs. *)
val alternating : Circuit.t -> Scan.config -> repeats:int -> Fsim.stimulus

(** [of_comb_test c config ~ff_values ~pi_values] realizes a combinational
    scan-mode test: parity-aware scan-in of the requested flip-flop state
    (aligned so all chains finish together), one apply cycle with the given
    primary-input values, and a full-length scan-out. [ff_values] and
    [pi_values] are assignments by net id; unassigned positions are don't
    care. *)
val of_comb_test :
  Circuit.t ->
  Scan.config ->
  ff_values:(int * V3.t) list ->
  pi_values:(int * V3.t) list ->
  Fsim.stimulus

(** [of_seq_test c config test] realizes a sequential-ATPG test: scan-in of
    the initial state, the test's per-frame input values (which may include
    scan-in assignments, since scan-ins are free inputs of the unrolled
    model), and a full-length scan-out. *)
val of_seq_test : Circuit.t -> Scan.config -> Seq.test -> Fsim.stimulus

(** [of_capture_test c config ~ff_values ~pi_values] realizes a standard
    scan test of the functional logic (the "subsequent testing" the paper's
    flow enables): scan-in of the state, one functional capture cycle with
    scan-enable low and the given input values, then re-entry into scan
    mode and a full-length unload. *)
val of_capture_test :
  Circuit.t ->
  Scan.config ->
  ff_values:(int * V3.t) list ->
  pi_values:(int * V3.t) list ->
  Fsim.stimulus

(** [concat stimuli] joins stimulus blocks into one (for single-pass fault
    simulation); the constraints of later blocks are reapplied at their
    first cycle. *)
val concat : Fsim.stimulus list -> Fsim.stimulus
