(** Section 5 of the paper: partitioning the remaining faults for
    sequential ATPG so that each gets enough chain controllability and
    observability while bounding the number of circuit models built.

    Locations are segment indices on a chain. For a fault with locations
    [l1 < … < ln] on one chain, positions before [l1] are controllable and
    positions at or past [ln] are observable. Group 1 (solo models): faults
    affecting several chains, and single-chain multi-location faults whose
    span is at least [large]. Group 2: multi-location faults with span in
    [[med, large)]; each gets its own model but shares it with every
    compatible fault. Group 3: everything else, clustered greedily so that
    each cluster's combined location window is at most [dist]. *)

type dist_params = { large : int; med : int; dist : int }

(** [paper_params ~maxsize ~floor_scale] is the paper's setting:
    [large = max(0.6·maxsize, 50·floor_scale)],
    [med = max(0.25·maxsize, 25·floor_scale)],
    [dist = max(0.15·maxsize, 20·floor_scale)] — with [floor_scale]
    shrinking the absolute floors for scaled-down benchmark runs. *)
val paper_params : maxsize:int -> floor_scale:float -> dist_params

(** A fault's footprint on the chains: the distinct chains it touches and,
    per chain, its first and last location. *)
type footprint = {
  index : int;  (** caller's fault identifier *)
  spans : (int * (int * int)) list;  (** chain -> (l1, ln) *)
}

val footprint_of : index:int -> locations:(int * int) list -> footprint

type group =
  | Solo of footprint
  | Shared of { leader : footprint; members : footprint list }
  | Cluster of { chain : int; lo : int; hi : int; members : footprint list }

val make : dist_params -> footprint list -> group list

(** [bounds_of_group g] is the per-chain (controllable-below, observable-at)
    window of the group's circuit model. *)
val bounds_of_group : group -> (int * (int * int)) list
