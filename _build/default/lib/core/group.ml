type dist_params = { large : int; med : int; dist : int }

let paper_params ~maxsize ~floor_scale =
  let floor f = int_of_float (ceil (f *. floor_scale)) in
  {
    large = max (6 * maxsize / 10) (floor 50.);
    med = max (maxsize / 4) (floor 25.);
    dist = max (15 * maxsize / 100) (floor 20.);
  }

type footprint = { index : int; spans : (int * (int * int)) list }

let footprint_of ~index ~locations =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (chain, seg) ->
      match Hashtbl.find_opt tbl chain with
      | None -> Hashtbl.replace tbl chain (seg, seg)
      | Some (lo, hi) -> Hashtbl.replace tbl chain (min lo seg, max hi seg))
    locations;
  let spans =
    Hashtbl.fold (fun chain span acc -> (chain, span) :: acc) tbl []
    |> List.sort compare
  in
  { index; spans }

type group =
  | Solo of footprint
  | Shared of { leader : footprint; members : footprint list }
  | Cluster of { chain : int; lo : int; hi : int; members : footprint list }

let span_of fp =
  match fp.spans with
  | [ (_, (l1, ln)) ] -> ln - l1
  | [] | _ :: _ :: _ -> invalid_arg "span_of: not a single-chain footprint"

let multi_location fp =
  match fp.spans with
  | [ (_, (l1, ln)) ] -> ln > l1
  | [] -> false
  | _ :: _ :: _ -> true

(* [fits leader fp]: can [fp] be detected in [leader]'s model? Its chain
   window must lie inside the leader's. *)
let fits leader fp =
  match leader.spans, fp.spans with
  | [ (kc, (m, o)) ], [ (k, (l1, ln)) ] -> k = kc && l1 >= m && ln <= o
  | _, _ -> false

let make params footprints =
  let multi_chain, single_chain =
    List.partition (fun fp -> List.length fp.spans > 1) footprints
  in
  let group1_span, rest =
    List.partition
      (fun fp -> multi_location fp && span_of fp >= params.large)
      single_chain
  in
  let group2, group3 =
    List.partition
      (fun fp -> multi_location fp && span_of fp >= params.med)
      rest
  in
  let solos = List.map (fun fp -> Solo fp) (multi_chain @ group1_span) in
  (* Group 2: each fault keeps its own model; compatible remaining faults
     ride along in its fault list. *)
  let shareds =
    List.map
      (fun leader ->
        let members =
          List.filter (fun fp -> fp.index <> leader.index && fits leader fp)
            (group2 @ group3)
        in
        Shared { leader; members })
      group2
  in
  (* Group 3: greedy clustering per chain under the window budget. *)
  let by_chain = Hashtbl.create 8 in
  List.iter
    (fun fp ->
      match fp.spans with
      | [ (chain, _) ] ->
        Hashtbl.replace by_chain chain
          (fp :: (Option.value ~default:[] (Hashtbl.find_opt by_chain chain)))
      | [] | _ :: _ :: _ -> assert false)
    group3;
  let clusters = ref [] in
  Hashtbl.iter
    (fun chain fps ->
      let sorted =
        List.sort
          (fun a b ->
            match a.spans, b.spans with
            | [ (_, (l1a, _)) ], [ (_, (l1b, _)) ] -> Int.compare l1a l1b
            | _, _ -> assert false)
          fps
      in
      let flush lo hi members =
        if members <> [] then
          clusters := Cluster { chain; lo; hi; members = List.rev members } :: !clusters
      in
      let rec walk lo hi members = function
        | [] -> flush lo hi members
        | fp :: rest -> (
          match fp.spans with
          | [ (_, (l1, ln)) ] ->
            if members = [] then walk l1 ln [ fp ] rest
            else if max hi ln - min lo l1 <= params.dist then
              walk (min lo l1) (max hi ln) (fp :: members) rest
            else begin
              flush lo hi members;
              walk l1 ln [ fp ] rest
            end
          | [] | _ :: _ :: _ -> assert false)
      in
      walk 0 0 [] sorted)
    by_chain;
  solos @ shareds @ List.rev !clusters

let bounds_of_group = function
  | Solo fp -> fp.spans
  | Shared { leader; _ } -> leader.spans
  | Cluster { chain; lo; hi; _ } -> [ (chain, (lo, hi)) ]
