lib/gen/suite.mli: Gen
