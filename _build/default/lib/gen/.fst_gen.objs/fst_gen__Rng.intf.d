lib/gen/rng.mli:
