lib/gen/suite.ml: Char Gen Int64 List String Sys
