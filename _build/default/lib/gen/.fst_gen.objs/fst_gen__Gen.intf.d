lib/gen/gen.mli: Circuit Fst_netlist
