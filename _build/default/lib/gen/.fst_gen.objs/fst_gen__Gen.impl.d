lib/gen/gen.ml: Array Builder Circuit Fst_logic Fst_netlist Gate List Printf Rng
