(** Synthetic sequential benchmark circuits.

    Stands in for the mapped ISCAS'89 netlists of the paper's test suite
    (see DESIGN.md §5): given target gate/flip-flop/pin counts and a seed,
    produces a deterministic circuit with a nand/nor-heavy mapped gate mix,
    fanin 1–4, forward-biased locality (deep cones), flip-flop feedback
    through the combinational logic, and xor-compacted sinks so that all
    logic is observable. *)

open Fst_netlist

type profile = {
  name : string;
  gates : int;  (** approximate logic-gate target *)
  ffs : int;
  pis : int;
  pos : int;  (** primary outputs (before sink compaction adds none) *)
  seed : int64;
}

val generate : profile -> Circuit.t

(** [scaled ~factor p] scales the gate/flip-flop/pin counts, keeping at
    least 2 gates, 1 flip-flop, 2 inputs and 1 output. *)
val scaled : factor:float -> profile -> profile
