(** The paper's test suite: the 12 largest ISCAS'89 benchmarks, realized as
    synthetic circuits with the published mapped gate and flip-flop counts
    (see DESIGN.md §5 for the substitution rationale). Chain counts follow
    the paper's practice of splitting large circuits into several chains to
    keep chain length reasonable. *)

type entry = { profile : Gen.profile; chains : int }

(** [suite ~scale ()] is the 12-circuit suite, scaled by [scale] (1.0 =
    published sizes). *)
val suite : ?scale:float -> unit -> entry list

(** [find ~scale name] is the suite entry for the given circuit name.
    @raise Not_found if the name is not in the suite. *)
val find : ?scale:float -> string -> entry

(** Reads the [FST_SCALE] environment variable (default 0.1, the default
    benchmark scale). *)
val scale_from_env : unit -> float
