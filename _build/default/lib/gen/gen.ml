open Fst_logic
open Fst_netlist

type profile = {
  name : string;
  gates : int;
  ffs : int;
  pis : int;
  pos : int;
  seed : int64;
}

let scaled ~factor p =
  let s x lo = max lo (int_of_float (float_of_int x *. factor)) in
  {
    p with
    gates = s p.gates 2;
    ffs = s p.ffs 1;
    pis = s p.pis 2;
    pos = s p.pos 1;
  }

(* Mapped-library gate mix: nand/nor dominated, occasional xor cells. *)
let gate_mix =
  [
    (30, Gate.Nand);
    (20, Gate.Nor);
    (12, Gate.And);
    (10, Gate.Or);
    (15, Gate.Not);
    (3, Gate.Buf);
    (6, Gate.Xor);
    (4, Gate.Xnor);
  ]

let fanin_mix = [ (55, 2); (30, 3); (15, 4) ]

(* A growable pool of candidate fanin nets. *)
type pool = { mutable nets : int array; mutable len : int }

let pool_create cap = { nets = Array.make (max 8 cap) 0; len = 0 }

let pool_push p net =
  if p.len >= Array.length p.nets then begin
    let bigger = Array.make (2 * Array.length p.nets) 0 in
    Array.blit p.nets 0 bigger 0 p.len;
    p.nets <- bigger
  end;
  p.nets.(p.len) <- net;
  p.len <- p.len + 1

(* Fanin selection: mostly local (recent nets, building depth), sometimes
   global (reconvergence and wide cones). *)
let pick_fanin rng p =
  if p.len = 0 then invalid_arg "pick_fanin: empty pool";
  let window = min p.len 64 in
  if Rng.float rng < 0.7 then p.nets.(p.len - 1 - Rng.int rng window)
  else p.nets.(Rng.int rng p.len)

let distinct_fanins rng p k =
  let rec take acc n =
    if n = 0 then acc
    else
      let f = pick_fanin rng p in
      if List.mem f acc && p.len > k then take acc n
      else take (f :: acc) (n - 1)
  in
  take [] k

let generate prof =
  let rng = Rng.create prof.seed in
  let b = Builder.create ~name:prof.name () in
  let pis =
    Array.init prof.pis (fun i ->
        Builder.add_input ~name:(Printf.sprintf "pi%d" i) b)
  in
  let ffs =
    Array.init prof.ffs (fun i ->
        Builder.add_dff_placeholder ~name:(Printf.sprintf "ff%d" i) b)
  in
  (* The pool grows as gates are created; flip-flop outputs and inputs are
     candidates from the start, so cones mix sequential and primary
     sources. *)
  let pool = pool_create (prof.pis + prof.ffs + prof.gates) in
  Array.iter (fun n -> pool_push pool n) pis;
  Array.iter (fun n -> pool_push pool n) ffs;
  let core_gates = max 1 (prof.gates - (prof.gates / 10)) in
  let gate_nets = ref [] in
  for i = 0 to core_gates - 1 do
    let g = Rng.weighted rng gate_mix in
    let arity =
      match g with
      | Gate.Not | Gate.Buf -> 1
      | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor ->
        Rng.weighted rng fanin_mix
    in
    let fanins = distinct_fanins rng pool arity in
    let net = Builder.add_gate ~name:(Printf.sprintf "g%d" i) b g fanins in
    gate_nets := net :: !gate_nets;
    pool_push pool net
  done;
  let gate_arr = Array.of_list (List.rev !gate_nets) in
  (* Flip-flop data inputs come from the combinational logic, creating
     flip-flop to flip-flop paths for TPI to exploit. *)
  Array.iter
    (fun ff ->
      let data =
        if Array.length gate_arr > 0 then Rng.pick rng gate_arr
        else Rng.pick rng pis
      in
      Builder.connect_dff b ~ff ~data)
    ffs;
  (* Collect sink nets (no consumers) and xor-compact them down to the
     primary-output budget so every gate is observable. *)
  let fo = Array.make (Builder.net_count b) 0 in
  for i = 0 to Builder.net_count b - 1 do
    let fanins =
      match Builder.node b i with
      | Circuit.Input | Circuit.Const _ -> [||]
      | Circuit.Gate (_, fi) -> fi
      | Circuit.Dff d -> [| d |]
    in
    Array.iter (fun f -> fo.(f) <- fo.(f) + 1) fanins
  done;
  let sinks = ref [] in
  for i = Builder.net_count b - 1 downto 0 do
    match Builder.node b i with
    | (Circuit.Gate _ | Circuit.Dff _) when fo.(i) = 0 -> sinks := i :: !sinks
    | Circuit.Gate _ | Circuit.Dff _ | Circuit.Input | Circuit.Const _ -> ()
  done;
  let target = max 1 prof.pos in
  let sinks = ref (Array.of_list !sinks) in
  let round = ref 0 in
  while Array.length !sinks > target do
    let s = !sinks in
    let total = ref (Array.length s) in
    let next = ref [] in
    let i = ref 0 in
    while !i < Array.length s do
      if !i + 1 < Array.length s && !total > target then begin
        let net =
          Builder.add_gate
            ~name:(Printf.sprintf "cmp%d_%d" !round !i)
            b Gate.Xor
            [ s.(!i); s.(!i + 1) ]
        in
        next := net :: !next;
        decr total;
        i := !i + 2
      end
      else begin
        next := s.(!i) :: !next;
        incr i
      end
    done;
    incr round;
    sinks := Array.of_list (List.rev !next)
  done;
  Array.iter (fun net -> Builder.mark_output b net) !sinks;
  (* Guarantee the requested number of primary outputs even when the sink
     count fell short. *)
  let missing = target - Array.length !sinks in
  for _ = 1 to missing do
    Builder.mark_output b (Rng.pick rng gate_arr)
  done;
  Builder.freeze b
