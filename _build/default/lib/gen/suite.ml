type entry = { profile : Gen.profile; chains : int }

(* name, gates, ffs, pis, pos, chains: published ISCAS'89 characteristics
   (gate counts after technology mapping), chain counts chosen to keep
   chains under a few hundred flip-flops as in the paper. *)
let table =
  [
    ("s1423", 657, 74, 17, 5, 1);
    ("s1488", 653, 6, 8, 19, 1);
    ("s1494", 647, 6, 8, 19, 1);
    ("s3330", 1789, 132, 40, 73, 2);
    ("s4863", 2342, 104, 49, 16, 2);
    ("s5378", 2779, 179, 35, 49, 2);
    ("s6669", 3080, 239, 83, 55, 2);
    ("s9234", 5597, 211, 36, 39, 4);
    ("s13207", 7951, 638, 62, 152, 4);
    ("s15850", 9772, 534, 77, 150, 4);
    ("s38417", 22179, 1636, 28, 106, 8);
    ("s38584", 19253, 1426, 38, 304, 8);
  ]

let seed_of name =
  (* Stable seed derived from the circuit name. *)
  let h = ref 0x51ED270B4A5EL in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001B3L)
    name;
  !h

let suite ?(scale = 1.0) () =
  List.map
    (fun (name, gates, ffs, pis, pos, chains) ->
      let profile =
        Gen.scaled ~factor:scale
          { Gen.name; gates; ffs; pis; pos; seed = seed_of name }
      in
      { profile; chains })
    table

let find ?(scale = 1.0) name =
  match List.find_opt (fun e -> e.profile.Gen.name = name) (suite ~scale ()) with
  | Some e -> e
  | None -> raise Not_found

let scale_from_env () =
  match Sys.getenv_opt "FST_SCALE" with
  | None -> 0.1
  | Some s -> (
    match float_of_string_opt s with
    | Some f when f > 0.0 -> f
    | Some _ | None -> 0.1)
