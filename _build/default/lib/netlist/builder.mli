(** Incremental circuit construction.

    A builder hands out net ids as nodes are added; [freeze] validates and
    produces an immutable {!Circuit.t}. Net names are generated when not
    supplied. Flip-flop data inputs may be wired after creation
    ([add_dff_placeholder] / [connect_dff]) so that sequential feedback
    loops can be built in one pass. *)

open Fst_logic

type t

val create : ?name:string -> unit -> t

(** [add_input b ~name] creates a primary input and returns its net id. *)
val add_input : ?name:string -> t -> int

val add_const : ?name:string -> t -> V3.t -> int

(** [add_gate b g fanins] creates a gate; fanin arity is checked at
    [freeze]. *)
val add_gate : ?name:string -> t -> Gate.t -> int list -> int

(** [add_dff b ~data] creates a flip-flop fed by net [data]. *)
val add_dff : ?name:string -> t -> data:int -> int

(** [add_dff_placeholder b] creates a flip-flop whose data input must be set
    with [connect_dff] before [freeze]. *)
val add_dff_placeholder : ?name:string -> t -> int

val connect_dff : t -> ff:int -> data:int -> unit

(** [rewire_fanin b ~node ~pin ~net] replaces fanin [pin] of [node] — used by
    test-point insertion. *)
val rewire_fanin : t -> node:int -> pin:int -> net:int -> unit

(** [set_dff_data b ~ff ~data] replaces the data input of flip-flop [ff]. *)
val set_dff_data : t -> ff:int -> data:int -> unit

val mark_output : t -> int -> unit

(** [net_count b] is the number of nets allocated so far. *)
val net_count : t -> int

(** [node b n] is the current driver of net [n]. *)
val node : t -> int -> Circuit.node

(** [freeze b] validates and returns the circuit.
    @raise Circuit.Malformed if a placeholder flip-flop was never connected
    or any arity/range check fails. *)
val freeze : t -> Circuit.t

(** [of_circuit c] reopens an existing circuit for modification (nodes are
    copied; the original is untouched). *)
val of_circuit : Circuit.t -> t
