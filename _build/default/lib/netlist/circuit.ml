open Fst_logic

type node =
  | Input
  | Const of V3.t
  | Gate of Gate.t * int array
  | Dff of int

type t = {
  name : string;
  nodes : node array;
  net_names : string array;
  outputs : int array;
  inputs : int array;
  dffs : int array;
  fanout : int array array;
  topo : int array;
  level : int array;
}

exception Combinational_cycle of string
exception Malformed of string

let malformed fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let fanins_of = function
  | Input | Const _ -> [||]
  | Gate (_, fi) -> fi
  | Dff d -> [| d |]

let validate ~nodes ~net_names ~outputs =
  let n = Array.length nodes in
  if Array.length net_names <> n then
    malformed "%d nodes but %d net names" n (Array.length net_names);
  let seen = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i name ->
      if Hashtbl.mem seen name then malformed "duplicate net name %S" name;
      Hashtbl.add seen name i)
    net_names;
  let check_net ctx id =
    if id < 0 || id >= n then malformed "%s references bad net %d" ctx id
  in
  Array.iteri
    (fun i nd ->
      match nd with
      | Input | Const _ -> ()
      | Gate (g, fi) ->
        if not (Gate.arity_ok g (Array.length fi)) then
          malformed "gate %s at net %d has %d fanins" (Gate.to_string g) i
            (Array.length fi);
        Array.iter (check_net (Printf.sprintf "gate at net %d" i)) fi
      | Dff d -> check_net (Printf.sprintf "dff at net %d" i) d)
    nodes;
  Array.iter (check_net "output list") outputs

let compute_fanout nodes =
  let n = Array.length nodes in
  let counts = Array.make n 0 in
  let count_fanins i =
    Array.iter (fun f -> counts.(f) <- counts.(f) + 1) (fanins_of nodes.(i))
  in
  for i = 0 to n - 1 do
    count_fanins i
  done;
  let fanout = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make n 0 in
  for i = 0 to n - 1 do
    Array.iter
      (fun f ->
        fanout.(f).(fill.(f)) <- i;
        fill.(f) <- fill.(f) + 1)
      (fanins_of nodes.(i))
  done;
  fanout

(* Kahn's algorithm over the combinational subgraph: inputs, constants and
   flip-flop outputs are sources; a Dff node consumes its data net but its
   own output breaks the cycle. *)
let compute_topo ~name nodes fanout =
  let n = Array.length nodes in
  let pending = Array.make n 0 in
  let order = Array.make n (-1) in
  let pos = ref 0 in
  let queue = Queue.create () in
  let emit i =
    order.(!pos) <- i;
    incr pos
  in
  for i = 0 to n - 1 do
    match nodes.(i) with
    | Input | Const _ | Dff _ -> Queue.add i queue
    | Gate (_, fi) -> pending.(i) <- Array.length fi
  done;
  (* Dff nodes are emitted as sources (their output is available at the start
     of a cycle) even though their data fanin is combinational; the data net
     is read only when the clock ticks. *)
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    emit i;
    Array.iter
      (fun consumer ->
        match nodes.(consumer) with
        | Gate _ ->
          pending.(consumer) <- pending.(consumer) - 1;
          if pending.(consumer) = 0 then Queue.add consumer queue
        | Input | Const _ | Dff _ -> ())
      fanout.(i)
  done;
  if !pos <> n then raise (Combinational_cycle name);
  order

let compute_levels nodes topo =
  let n = Array.length nodes in
  let level = Array.make n 0 in
  Array.iter
    (fun i ->
      match nodes.(i) with
      | Input | Const _ | Dff _ -> level.(i) <- 0
      | Gate (_, fi) ->
        let m = ref 0 in
        Array.iter (fun f -> if level.(f) > !m then m := level.(f)) fi;
        level.(i) <- !m + 1)
    topo;
  level

let collect_kind nodes pred =
  let acc = ref [] in
  for i = Array.length nodes - 1 downto 0 do
    if pred nodes.(i) then acc := i :: !acc
  done;
  Array.of_list !acc

let make ~name ~nodes ~net_names ~outputs =
  validate ~nodes ~net_names ~outputs;
  let fanout = compute_fanout nodes in
  let topo = compute_topo ~name nodes fanout in
  let level = compute_levels nodes topo in
  let inputs = collect_kind nodes (function Input -> true | _ -> false) in
  let dffs = collect_kind nodes (function Dff _ -> true | _ -> false) in
  { name; nodes; net_names; outputs; inputs; dffs; fanout; topo; level }

let num_nets c = Array.length c.nodes

let gate_count c =
  Array.fold_left
    (fun acc nd -> match nd with Gate _ -> acc + 1 | _ -> acc)
    0 c.nodes

let dff_count c = Array.length c.dffs
let input_count c = Array.length c.inputs
let node c n = c.nodes.(n)
let fanins c n = fanins_of c.nodes.(n)
let net_name c n = c.net_names.(n)

let find_net c name =
  let n = num_nets c in
  let rec loop i =
    if i >= n then raise Not_found
    else if String.equal c.net_names.(i) name then i
    else loop (i + 1)
  in
  loop 0

let is_input c n = match c.nodes.(n) with Input -> true | _ -> false
let is_dff c n = match c.nodes.(n) with Dff _ -> true | _ -> false
let is_output c n = Array.exists (fun o -> o = n) c.outputs

let max_fanin c =
  Array.fold_left
    (fun acc nd ->
      match nd with
      | Gate (_, fi) -> max acc (Array.length fi)
      | Input | Const _ | Dff _ -> acc)
    0 c.nodes

let depth c = Array.fold_left max 0 c.level

let pp_stats ppf c =
  Fmt.pf ppf "%s: %d nets, %d gates, %d FFs, %d PIs, %d POs, depth %d" c.name
    (num_nets c) (gate_count c) (dff_count c) (input_count c)
    (Array.length c.outputs) (depth c)
