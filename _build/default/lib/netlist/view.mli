(** A circuit viewed as a combinational test-generation model.

    The view fixes, for a given operating mode (for this project: scan
    mode), which nets are assignable inputs, which are tied to constants,
    and which points are observable. Flip-flop outputs listed as [free] act
    as pseudo primary inputs; flip-flop data pins listed as observation
    points act as pseudo primary outputs. Nets that are neither free nor
    fixed nor gate-driven (e.g. an uncontrollable flip-flop output) read as
    a permanent unknown. *)

open Fst_logic

type obs_point =
  | Onet of int  (** observe a net directly (a primary output) *)
  | Opin of { node : int; pin : int }
      (** observe what a node reads on one pin (a flip-flop data input) *)

type t = private {
  circuit : Circuit.t;
  free : bool array;  (** per net: assignable input *)
  fixed : V3.t option array;  (** per net: tied value *)
  observe : obs_point array;
}

(** [make c ~free ~fixed ~observe] builds a view; [free] and [fixed] must be
    disjoint and refer only to source nets (inputs, constants, flip-flop
    outputs). *)
val make :
  Circuit.t ->
  free:int list ->
  fixed:(int * V3.t) list ->
  observe:obs_point list ->
  t

(** [scan_mode c ~constraints ~extra_observe] is the standard scan-mode
    combinational model: every primary input not bound by [constraints] and
    every flip-flop output is free; constrained inputs are fixed; the
    observation points are the primary outputs, every flip-flop data pin,
    and [extra_observe]. *)
val scan_mode :
  Circuit.t -> constraints:(int * V3.t) list -> ?extra_observe:obs_point list ->
  unit -> t

val obs_source_net : t -> obs_point -> int
val free_inputs : t -> int array
