lib/netlist/timing.mli: Circuit Fst_logic
