lib/netlist/netfile.mli: Circuit
