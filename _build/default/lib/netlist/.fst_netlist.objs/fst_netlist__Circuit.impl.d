lib/netlist/circuit.ml: Array Fmt Fst_logic Gate Hashtbl Printf Queue String V3
