lib/netlist/opt.ml: Array Builder Circuit Fmt Fst_logic Gate List V3
