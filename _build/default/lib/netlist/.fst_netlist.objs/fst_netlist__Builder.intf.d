lib/netlist/builder.mli: Circuit Fst_logic Gate V3
