lib/netlist/opt.mli: Circuit Fmt
