lib/netlist/view.ml: Array Circuit Fst_logic List Printf V3
