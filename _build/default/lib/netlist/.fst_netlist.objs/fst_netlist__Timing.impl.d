lib/netlist/timing.ml: Array Circuit Fst_logic Gate List
