lib/netlist/circuit.mli: Fmt Fst_logic Gate V3
