lib/netlist/view.mli: Circuit Fst_logic V3
