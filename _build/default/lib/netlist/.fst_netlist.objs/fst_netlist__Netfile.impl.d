lib/netlist/netfile.ml: Array Buffer Circuit Filename Fst_logic Gate Hashtbl List Printf String V3
