lib/netlist/builder.ml: Array Circuit Hashtbl List Printf
