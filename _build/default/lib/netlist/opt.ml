open Fst_logic

type stats = { folded : int; bypassed : int; swept : int; decomposed : int }

let zero_stats = { folded = 0; bypassed = 0; swept = 0; decomposed = 0 }

let merge a b =
  {
    folded = a.folded + b.folded;
    bypassed = a.bypassed + b.bypassed;
    swept = a.swept + b.swept;
    decomposed = a.decomposed + b.decomposed;
  }

let pp_stats ppf s =
  Fmt.pf ppf "%d folded, %d bypassed, %d swept, %d decomposed" s.folded
    s.bypassed s.swept s.decomposed

(* Shared rebuild driver. [alias i] short-circuits net [i] to another net
   (applied transitively; alias chains always point toward fanins, so they
   terminate). [emit b lookup i] creates the replacement node(s) for a kept
   source/gate net and returns the new id, or [None] to drop it. Flip-flops
   are always kept (placeholder first, connected at the end) so sequential
   behaviour is preserved. *)
let rebuild (c : Circuit.t) ~alias ~emit =
  let n = Circuit.num_nets c in
  let b = Builder.create ~name:c.Circuit.name () in
  let new_id = Array.make n (-1) in
  let rec resolve i = match alias i with Some j -> resolve j | None -> i in
  let lookup old =
    let r = resolve old in
    assert (new_id.(r) >= 0);
    new_id.(r)
  in
  let dff_links = ref [] in
  Array.iter
    (fun i ->
      if resolve i = i then
        match Circuit.node c i with
        | Circuit.Dff data ->
          let nid = Builder.add_dff_placeholder ~name:(Circuit.net_name c i) b in
          new_id.(i) <- nid;
          dff_links := (nid, data) :: !dff_links
        | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> (
          match emit b lookup i with
          | Some nid -> new_id.(i) <- nid
          | None -> ()))
    c.Circuit.topo;
  List.iter
    (fun (nid, data) -> Builder.connect_dff b ~ff:nid ~data:(lookup data))
    !dff_links;
  Array.iter (fun o -> Builder.mark_output b (lookup o)) c.Circuit.outputs;
  Builder.freeze b

let copy_source b c i =
  match Circuit.node c i with
  | Circuit.Input -> Some (Builder.add_input ~name:(Circuit.net_name c i) b)
  | Circuit.Const v -> Some (Builder.add_const ~name:(Circuit.net_name c i) b v)
  | Circuit.Gate _ | Circuit.Dff _ -> None

(* --- constant folding ---------------------------------------------- *)

let const_values (c : Circuit.t) =
  let v = Array.make (Circuit.num_nets c) V3.X in
  Array.iter
    (fun i ->
      match Circuit.node c i with
      | Circuit.Input | Circuit.Dff _ -> ()
      | Circuit.Const k -> v.(i) <- k
      | Circuit.Gate (g, fi) -> v.(i) <- Gate.eval g (Array.map (fun f -> v.(f)) fi))
    c.Circuit.topo;
  v

let constant_fold (c : Circuit.t) =
  let v = const_values c in
  let folded = ref 0 in
  let emit b lookup i =
    match copy_source b c i with
    | Some nid -> Some nid
    | None -> (
      match Circuit.node c i with
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> assert false
      | Circuit.Gate (g, fi) ->
        let name = Circuit.net_name c i in
        if V3.is_binary v.(i) then begin
          incr folded;
          Some (Builder.add_const ~name b v.(i))
        end
        else (
          match g with
          | Gate.Not | Gate.Buf ->
            Some (Builder.add_gate ~name b g [ lookup fi.(0) ])
          | Gate.And | Gate.Nand | Gate.Or | Gate.Nor ->
            let nc =
              match Gate.controlling g with
              | Some V3.Zero -> V3.One
              | Some V3.One -> V3.Zero
              | Some V3.X | None -> assert false
            in
            let live =
              Array.to_list fi |> List.filter (fun f -> not (V3.equal v.(f) nc))
            in
            if List.length live < Array.length fi then incr folded;
            (match live with
             | [] -> assert false (* output would have been constant *)
             | [ one ] ->
               let kind = if Gate.inverting g then Gate.Not else Gate.Buf in
               Some (Builder.add_gate ~name b kind [ lookup one ])
             | _ :: _ :: _ ->
               Some (Builder.add_gate ~name b g (List.map lookup live)))
          | Gate.Xor | Gate.Xnor ->
            let live, consts =
              Array.to_list fi |> List.partition (fun f -> not (V3.is_binary v.(f)))
            in
            let parity =
              List.fold_left
                (fun acc f -> if V3.equal v.(f) V3.One then not acc else acc)
                false consts
            in
            if consts <> [] then incr folded;
            let inverting = Gate.inverting g <> parity in
            (match live with
             | [] -> assert false
             | [ one ] ->
               let kind = if inverting then Gate.Not else Gate.Buf in
               Some (Builder.add_gate ~name b kind [ lookup one ])
             | _ :: _ :: _ ->
               let kind = if inverting then Gate.Xnor else Gate.Xor in
               Some (Builder.add_gate ~name b kind (List.map lookup live)))))
  in
  let c' = rebuild c ~alias:(fun _ -> None) ~emit in
  (c', { zero_stats with folded = !folded })

(* --- buffer and double-inverter bypass ------------------------------ *)

let collapse_buffers (c : Circuit.t) =
  let bypassed = ref 0 in
  let alias i =
    match Circuit.node c i with
    | Circuit.Gate (Gate.Buf, fi) -> Some fi.(0)
    | Circuit.Gate (Gate.Not, fi) -> (
      match Circuit.node c fi.(0) with
      | Circuit.Gate (Gate.Not, inner) -> Some inner.(0)
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ | Circuit.Gate _ ->
        None)
    | Circuit.Input | Circuit.Const _ | Circuit.Dff _ | Circuit.Gate _ -> None
  in
  (* Count actual bypasses (reachable aliased nodes). *)
  Array.iteri (fun i _ -> if alias i <> None then incr bypassed) c.Circuit.nodes;
  let emit b lookup i =
    match copy_source b c i with
    | Some nid -> Some nid
    | None -> (
      match Circuit.node c i with
      | Circuit.Gate (g, fi) ->
        Some
          (Builder.add_gate ~name:(Circuit.net_name c i) b g
             (Array.to_list (Array.map lookup fi)))
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> assert false)
  in
  let c' = rebuild c ~alias ~emit in
  (c', { zero_stats with bypassed = !bypassed })

(* --- sweep ----------------------------------------------------------- *)

let sweep (c : Circuit.t) =
  let n = Circuit.num_nets c in
  let live = Array.make n false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      Array.iter mark (Circuit.fanins c i)
    end
  in
  Array.iter mark c.Circuit.outputs;
  Array.iter mark c.Circuit.dffs;
  (* Primary inputs always survive (the interface is part of the design). *)
  Array.iter (fun i -> live.(i) <- true) c.Circuit.inputs;
  let swept = ref 0 in
  let emit b lookup i =
    if not live.(i) then begin
      incr swept;
      None
    end
    else
      match copy_source b c i with
      | Some nid -> Some nid
      | None -> (
        match Circuit.node c i with
        | Circuit.Gate (g, fi) ->
          Some
            (Builder.add_gate ~name:(Circuit.net_name c i) b g
               (Array.to_list (Array.map lookup fi)))
        | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> assert false)
  in
  let c' = rebuild c ~alias:(fun _ -> None) ~emit in
  (c', { zero_stats with swept = !swept })

(* --- fanin decomposition --------------------------------------------- *)

let base_of = function
  | Gate.And | Gate.Nand -> Gate.And
  | Gate.Or | Gate.Nor -> Gate.Or
  | Gate.Xor | Gate.Xnor -> Gate.Xor
  | (Gate.Not | Gate.Buf) as g -> g

let limit_fanin ?(max_fanin = 4) (c : Circuit.t) =
  assert (max_fanin >= 2);
  let decomposed = ref 0 in
  let emit b lookup i =
    match copy_source b c i with
    | Some nid -> Some nid
    | None -> (
      match Circuit.node c i with
      | Circuit.Gate (g, fi) when Array.length fi <= max_fanin ->
        Some
          (Builder.add_gate ~name:(Circuit.net_name c i) b g
             (Array.to_list (Array.map lookup fi)))
      | Circuit.Gate (g, fi) ->
        (* Reduce layer by layer with the associative base operation; the
           original polarity stays at the root. *)
        let base = base_of g in
        let rec reduce ids =
          if List.length ids <= max_fanin then ids
          else begin
            let rec chunk acc current = function
              | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
              | x :: rest ->
                if List.length current = max_fanin then
                  chunk (List.rev current :: acc) [ x ] rest
                else chunk acc (x :: current) rest
            in
            let groups = chunk [] [] ids in
            let next =
              List.map
                (fun group ->
                  match group with
                  | [ single ] -> single
                  | _ ->
                    incr decomposed;
                    Builder.add_gate b base group)
                groups
            in
            reduce next
          end
        in
        let ids = reduce (Array.to_list (Array.map lookup fi)) in
        Some (Builder.add_gate ~name:(Circuit.net_name c i) b g ids)
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> assert false)
  in
  let c' = rebuild c ~alias:(fun _ -> None) ~emit in
  (c', { zero_stats with decomposed = !decomposed })

let optimize ?max_fanin c =
  let c, s1 = collapse_buffers c in
  let c, s2 = constant_fold c in
  let c, s3 = limit_fanin ?max_fanin c in
  let c, s4 = sweep c in
  (c, merge (merge s1 s2) (merge s3 s4))
