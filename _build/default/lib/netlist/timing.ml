open Fst_logic

type model = { gate_delay : Gate.t -> int }

let unit_model = { gate_delay = (fun _ -> 1) }

let mapped_model =
  {
    gate_delay =
      (function
       | Gate.Not | Gate.Buf -> 6
       | Gate.Nand | Gate.Nor -> 10
       | Gate.And | Gate.Or -> 14
       | Gate.Xor | Gate.Xnor -> 18);
  }

let arrival ?(model = unit_model) (c : Circuit.t) =
  let at = Array.make (Circuit.num_nets c) 0 in
  Array.iter
    (fun i ->
      match Circuit.node c i with
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> at.(i) <- 0
      | Circuit.Gate (g, fi) ->
        let worst = Array.fold_left (fun m f -> max m at.(f)) 0 fi in
        at.(i) <- worst + model.gate_delay g)
    c.Circuit.topo;
  at

(* Capture points: primary outputs and flip-flop data nets. *)
let capture_points (c : Circuit.t) ~ff_only =
  let ffs =
    Array.to_list c.Circuit.dffs
    |> List.filter_map (fun ff ->
           match Circuit.node c ff with
           | Circuit.Dff d -> Some d
           | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> None)
  in
  if ff_only then ffs else Array.to_list c.Circuit.outputs @ ffs

let trace_back (c : Circuit.t) at target =
  let rec walk net acc =
    match Circuit.node c net with
    | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> net :: acc
    | Circuit.Gate (_, fi) ->
      (* Follow the latest-arriving fanin. *)
      let slowest =
        Array.fold_left
          (fun best f -> if at.(f) > at.(best) then f else best)
          fi.(0) fi
      in
      walk slowest (net :: acc)
  in
  walk target []

let critical_over ?(model = unit_model) c points =
  let at = arrival ~model c in
  match points with
  | [] -> (0, [])
  | p :: rest ->
    let target = List.fold_left (fun b q -> if at.(q) > at.(b) then q else b) p rest in
    (at.(target), trace_back c at target)

let critical_path ?model (c : Circuit.t) =
  critical_over ?model c (capture_points c ~ff_only:false)

let worst_ff_path ?model (c : Circuit.t) =
  fst (critical_over ?model c (capture_points c ~ff_only:true))
