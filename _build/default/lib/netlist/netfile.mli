(** Textual netlist format, modeled on the ISCAS'89 bench syntax:

    {v
    # comment
    INPUT(G0)
    OUTPUT(G17)
    G10 = NAND(G0, G3)
    G5  = DFF(G10)
    G7  = CONST0        # also CONST1, CONSTX
    v}

    Definitions may appear in any order; forward references are resolved in
    a second pass. *)

exception Parse_error of { line : int; message : string }

val parse_string : ?name:string -> string -> Circuit.t
val parse_file : string -> Circuit.t

val to_string : Circuit.t -> string
val write_file : Circuit.t -> string -> unit
