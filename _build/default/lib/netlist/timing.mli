(** Static timing estimation.

    A simple topological arrival-time analysis used to quantify the scan
    performance overhead the paper's introduction cites: conventional
    MUXed scan adds a multiplexer delay in front of {e every} flip-flop,
    while TPI-based functional scan leaves sensitized mission paths
    untouched. Delays are integer units per gate; interconnect is
    ignored. *)


type model = { gate_delay : Fst_logic.Gate.t -> int }

(** Every gate costs one unit. *)
val unit_model : model

(** Rough mapped-library costs (inverter 6, nand/nor 10, and/or 14,
    xor/xnor 18, buffer 6). *)
val mapped_model : model

(** [arrival ?model c] is the arrival time of every net, with inputs,
    constants and flip-flop outputs at time 0. *)
val arrival : ?model:model -> Circuit.t -> int array

(** [critical_path ?model c] is the slowest register-to-register or
    input-to-output path: its delay and its nets from launch to capture
    point (a primary output or a flip-flop data input). *)
val critical_path : ?model:model -> Circuit.t -> int * int list

(** [worst_ff_path ?model c] restricts the capture points to flip-flop
    data inputs (the cycle-time-limiting paths). 0 when there are no
    flip-flops. *)
val worst_ff_path : ?model:model -> Circuit.t -> int
