open Fst_logic

type obs_point = Onet of int | Opin of { node : int; pin : int }

type t = {
  circuit : Circuit.t;
  free : bool array;
  fixed : V3.t option array;
  observe : obs_point array;
}

let is_source (c : Circuit.t) n =
  match Circuit.node c n with
  | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> true
  | Circuit.Gate _ -> false

let make (c : Circuit.t) ~free ~fixed ~observe =
  let n = Circuit.num_nets c in
  let free_arr = Array.make n false in
  let fixed_arr = Array.make n None in
  List.iter
    (fun i ->
      if not (is_source c i) then
        invalid_arg
          (Printf.sprintf "View.make: free net %d is gate-driven" i);
      free_arr.(i) <- true)
    free;
  List.iter
    (fun (i, v) ->
      if free_arr.(i) then
        invalid_arg (Printf.sprintf "View.make: net %d both free and fixed" i);
      fixed_arr.(i) <- Some v)
    fixed;
  { circuit = c; free = free_arr; fixed = fixed_arr; observe = Array.of_list observe }

let scan_mode (c : Circuit.t) ~constraints ?(extra_observe = []) () =
  let constrained = List.map fst constraints in
  let free_pis =
    Array.to_list c.Circuit.inputs
    |> List.filter (fun i -> not (List.mem i constrained))
  in
  let free = free_pis @ Array.to_list c.Circuit.dffs in
  let observe =
    List.map (fun o -> Onet o) (Array.to_list c.Circuit.outputs)
    @ List.map (fun ff -> Opin { node = ff; pin = 0 }) (Array.to_list c.Circuit.dffs)
    @ extra_observe
  in
  make c ~free ~fixed:constraints ~observe

let obs_source_net v = function
  | Onet n -> n
  | Opin { node; pin } -> (Circuit.fanins v.circuit node).(pin)

let free_inputs v =
  let acc = ref [] in
  for i = Array.length v.free - 1 downto 0 do
    if v.free.(i) then acc := i :: !acc
  done;
  Array.of_list !acc
