
type t = {
  mutable name : string;
  mutable nodes : Circuit.node array;
  mutable names : string array;
  mutable len : int;
  mutable outputs : int list;
  names_seen : (string, int) Hashtbl.t;
}

let create ?(name = "circuit") () =
  {
    name;
    nodes = Array.make 64 Circuit.Input;
    names = Array.make 64 "";
    len = 0;
    outputs = [];
    names_seen = Hashtbl.create 64;
  }

let grow b =
  let cap = Array.length b.nodes in
  if b.len >= cap then begin
    let nodes = Array.make (2 * cap) Circuit.Input in
    let names = Array.make (2 * cap) "" in
    Array.blit b.nodes 0 nodes 0 b.len;
    Array.blit b.names 0 names 0 b.len;
    b.nodes <- nodes;
    b.names <- names
  end

let add ?name b nd =
  grow b;
  let id = b.len in
  let nm = match name with Some n -> n | None -> Printf.sprintf "n%d" id in
  if Hashtbl.mem b.names_seen nm then
    raise (Circuit.Malformed (Printf.sprintf "duplicate net name %S" nm));
  Hashtbl.add b.names_seen nm id;
  b.nodes.(id) <- nd;
  b.names.(id) <- nm;
  b.len <- b.len + 1;
  id

let add_input ?name b = add ?name b Circuit.Input
let add_const ?name b v = add ?name b (Circuit.Const v)

let add_gate ?name b g fanins =
  add ?name b (Circuit.Gate (g, Array.of_list fanins))

let add_dff ?name b ~data = add ?name b (Circuit.Dff data)
let add_dff_placeholder ?name b = add ?name b (Circuit.Dff (-1))

let connect_dff b ~ff ~data =
  match b.nodes.(ff) with
  | Circuit.Dff (-1) -> b.nodes.(ff) <- Circuit.Dff data
  | Circuit.Dff _ ->
    raise (Circuit.Malformed (Printf.sprintf "dff %d already connected" ff))
  | Circuit.Input | Circuit.Const _ | Circuit.Gate _ ->
    raise (Circuit.Malformed (Printf.sprintf "net %d is not a dff" ff))

let rewire_fanin b ~node ~pin ~net =
  match b.nodes.(node) with
  | Circuit.Gate (g, fi) ->
    let fi = Array.copy fi in
    if pin < 0 || pin >= Array.length fi then
      raise (Circuit.Malformed (Printf.sprintf "bad pin %d of node %d" pin node));
    fi.(pin) <- net;
    b.nodes.(node) <- Circuit.Gate (g, fi)
  | Circuit.Dff _ when pin = 0 -> b.nodes.(node) <- Circuit.Dff net
  | Circuit.Dff _ | Circuit.Input | Circuit.Const _ ->
    raise (Circuit.Malformed (Printf.sprintf "node %d has no pin %d" node pin))

let set_dff_data b ~ff ~data =
  match b.nodes.(ff) with
  | Circuit.Dff _ -> b.nodes.(ff) <- Circuit.Dff data
  | Circuit.Input | Circuit.Const _ | Circuit.Gate _ ->
    raise (Circuit.Malformed (Printf.sprintf "net %d is not a dff" ff))

let mark_output b n = b.outputs <- n :: b.outputs
let net_count b = b.len
let node b n = b.nodes.(n)

let freeze b =
  let nodes = Array.sub b.nodes 0 b.len in
  Array.iteri
    (fun i nd ->
      match nd with
      | Circuit.Dff (-1) ->
        raise
          (Circuit.Malformed (Printf.sprintf "dff %d was never connected" i))
      | Circuit.Dff _ | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> ())
    nodes;
  Circuit.make ~name:b.name ~nodes
    ~net_names:(Array.sub b.names 0 b.len)
    ~outputs:(Array.of_list (List.rev b.outputs))

let of_circuit (c : Circuit.t) =
  let b = create ~name:c.name () in
  let n = Circuit.num_nets c in
  b.nodes <- Array.make (max 64 n) Circuit.Input;
  b.names <- Array.make (max 64 n) "";
  Array.blit c.nodes 0 b.nodes 0 n;
  Array.blit c.net_names 0 b.names 0 n;
  b.len <- n;
  b.outputs <- List.rev (Array.to_list c.outputs);
  Array.iteri (fun i nm -> Hashtbl.add b.names_seen nm i) c.net_names;
  b
