(** Netlist clean-up passes — a lightweight stand-in for the SIS
    [script.algebraic] preprocessing the paper applies before mapping.

    Every pass returns a new circuit that is three-valued-equivalent at the
    primary outputs and flip-flops (names are preserved, net ids are not).
    Flip-flops are never removed. *)

type stats = {
  folded : int;  (** gates replaced by constants or simplified *)
  bypassed : int;  (** buffers and double inverters short-circuited *)
  swept : int;  (** unobservable gates removed *)
  decomposed : int;  (** gates added by fanin decomposition *)
}

val pp_stats : stats Fmt.t

(** [constant_fold c] propagates tie-cell constants: gates whose output is
    a constant become tie cells, and constant non-controlling fanins are
    dropped (xor parity folds into the gate polarity). *)
val constant_fold : Circuit.t -> Circuit.t * stats

(** [collapse_buffers c] short-circuits buffers and double inverters. *)
val collapse_buffers : Circuit.t -> Circuit.t * stats

(** [sweep c] removes logic with no path to a primary output or flip-flop. *)
val sweep : Circuit.t -> Circuit.t * stats

(** [limit_fanin ?max_fanin c] decomposes gates wider than [max_fanin]
    (default 4) into balanced trees, keeping the polarity at the root. *)
val limit_fanin : ?max_fanin:int -> Circuit.t -> Circuit.t * stats

(** [optimize c] runs buffers → constants → fanin limit → sweep and merges
    the statistics. *)
val optimize : ?max_fanin:int -> Circuit.t -> Circuit.t * stats
