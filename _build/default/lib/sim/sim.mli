(** Three-valued good-machine simulation.

    A {!state} holds one value per net. Primary inputs and flip-flop outputs
    are set explicitly (or by {!clock}); [eval_comb] sweeps gates in
    topological order. All values start at [X], matching an unknown
    power-on state. *)

open Fst_logic
open Fst_netlist

type state

val create : Circuit.t -> state

(** [value st n] is the current value of net [n]. *)
val value : state -> int -> V3.t

(** [values st] is the underlying array (indexed by net id); callers must
    not mutate it. *)
val values : state -> V3.t array

val set_input : Circuit.t -> state -> int -> V3.t -> unit

(** [set_ff c st ff v] forces the output of flip-flop [ff] (for test setup
    and for modelling a scanned-in state). *)
val set_ff : Circuit.t -> state -> int -> V3.t -> unit

(** [eval_comb c st] recomputes every gate net from the current input,
    constant and flip-flop values. *)
val eval_comb : Circuit.t -> state -> unit

(** [clock c st] latches each flip-flop's data value into its output
    (simultaneously across all flip-flops) and re-evaluates the
    combinational logic. *)
val clock : Circuit.t -> state -> unit

(** [outputs c st] reads the primary-output values. *)
val outputs : Circuit.t -> state -> V3.t array

(** [run c ~cycles ~stimulus ~observe] drives a fresh state for [cycles]
    clock periods. Each cycle [t]: [stimulus t] assignments are applied to
    primary inputs (by net id), combinational logic settles, [observe t st]
    is called, then the clock ticks. *)
val run :
  Circuit.t ->
  cycles:int ->
  stimulus:(int -> (int * V3.t) list) ->
  observe:(int -> state -> unit) ->
  unit
