open Fst_logic
open Fst_netlist

type state = { v : V3.t array; latch_buf : V3.t array }

let create (c : Circuit.t) =
  let n = Circuit.num_nets c in
  let st = { v = Array.make n V3.X; latch_buf = Array.make (Circuit.dff_count c) V3.X } in
  Array.iteri
    (fun i nd ->
      match nd with Circuit.Const k -> st.v.(i) <- k | _ -> ())
    c.Circuit.nodes;
  st

let value st n = st.v.(n)
let values st = st.v

let set_input (c : Circuit.t) st n v =
  if not (Circuit.is_input c n) then
    invalid_arg (Printf.sprintf "Sim.set_input: net %d is not an input" n);
  st.v.(n) <- v

let set_ff (c : Circuit.t) st n v =
  if not (Circuit.is_dff c n) then
    invalid_arg (Printf.sprintf "Sim.set_ff: net %d is not a flip-flop" n);
  st.v.(n) <- v

let eval_node (c : Circuit.t) st i =
  match c.Circuit.nodes.(i) with
  | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()
  | Circuit.Gate (g, fi) ->
    let values = Array.map (fun f -> st.v.(f)) fi in
    st.v.(i) <- Gate.eval g values

let eval_comb (c : Circuit.t) st =
  Array.iter (fun i -> eval_node c st i) c.Circuit.topo

let clock (c : Circuit.t) st =
  let dffs = c.Circuit.dffs in
  Array.iteri
    (fun k ff ->
      match c.Circuit.nodes.(ff) with
      | Circuit.Dff data -> st.latch_buf.(k) <- st.v.(data)
      | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false)
    dffs;
  Array.iteri (fun k ff -> st.v.(ff) <- st.latch_buf.(k)) dffs;
  eval_comb c st

let outputs (c : Circuit.t) st = Array.map (fun o -> st.v.(o)) c.Circuit.outputs

let run c ~cycles ~stimulus ~observe =
  let st = create c in
  for t = 0 to cycles - 1 do
    List.iter (fun (n, v) -> set_input c st n v) (stimulus t);
    eval_comb c st;
    observe t st;
    clock c st
  done
