lib/sim/sim.mli: Circuit Fst_logic Fst_netlist V3
