lib/sim/vcd.ml: Array Buffer Char Circuit Fst_logic Fst_netlist List Printf Sim String V3
