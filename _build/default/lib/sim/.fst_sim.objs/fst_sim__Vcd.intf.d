lib/sim/vcd.mli: Circuit Fst_logic Fst_netlist V3
