lib/sim/event_sim.ml: Array Circuit Fst_logic Fst_netlist Gate List Printf V3
