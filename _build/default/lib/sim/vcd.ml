open Fst_logic
open Fst_netlist

(* Short printable identifiers: base-94 over '!'..'~'. *)
let ident k =
  let base = 94 and first = 33 in
  let rec go k acc =
    let acc = String.make 1 (Char.chr (first + (k mod base))) ^ acc in
    if k < base then acc else go ((k / base) - 1) acc
  in
  go k ""

let sanitize name =
  String.map (fun ch -> if ch = ' ' || ch = '\t' then '_' else ch) name

let value_char = function
  | V3.Zero -> '0'
  | V3.One -> '1'
  | V3.X -> 'x'

let render (c : Circuit.t) ~nets ~trace =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "$version fst waveform dump $end";
  line "$timescale 1 ns $end";
  line "$scope module %s $end" (sanitize c.Circuit.name);
  Array.iteri
    (fun k net ->
      line "$var wire 1 %s %s $end" (ident k) (sanitize (Circuit.net_name c net)))
    nets;
  line "$upscope $end";
  line "$enddefinitions $end";
  let previous = Array.make (Array.length nets) None in
  Array.iteri
    (fun t row ->
      let changes = ref [] in
      Array.iteri
        (fun k v ->
          if previous.(k) <> Some v then begin
            previous.(k) <- Some v;
            changes := (k, v) :: !changes
          end)
        row;
      if !changes <> [] then begin
        line "#%d" t;
        List.iter
          (fun (k, v) -> line "%c%s" (value_char v) (ident k))
          (List.rev !changes)
      end)
    trace;
  line "#%d" (Array.length trace);
  Buffer.contents buf

let of_stimulus (c : Circuit.t) ~nets stim =
  let st = Sim.create c in
  let trace =
    Array.map
      (fun assigns ->
        List.iter (fun (n, v) -> Sim.set_input c st n v) assigns;
        Sim.eval_comb c st;
        let row = Array.map (fun n -> Sim.value st n) nets in
        Sim.clock c st;
        row)
      stim
  in
  render c ~nets ~trace

let write_file c ~nets ~trace path =
  let oc = open_out path in
  output_string oc (render c ~nets ~trace);
  close_out oc
