open Fst_logic
open Fst_netlist

type t = {
  c : Circuit.t;
  v : V3.t array;
  latch_buf : V3.t array;
  (* levelized wave: one dirty list per combinational level *)
  pending : int list array;
  queued : bool array;
  mutable events : int;
}

let create (c : Circuit.t) =
  let n = Circuit.num_nets c in
  let depth = Circuit.depth c in
  let t =
    {
      c;
      v = Array.make n V3.X;
      latch_buf = Array.make (Circuit.dff_count c) V3.X;
      pending = Array.make (depth + 1) [];
      queued = Array.make n false;
      events = 0;
    }
  in
  Array.iteri
    (fun i nd -> match nd with Circuit.Const k -> t.v.(i) <- k | _ -> ())
    c.Circuit.nodes;
  (* Initial wave: evaluate everything once so gate outputs are consistent
     with the all-X inputs. *)
  Array.iter
    (fun i ->
      match Circuit.node c i with
      | Circuit.Gate (g, fi) ->
        t.v.(i) <- Gate.eval g (Array.map (fun f -> t.v.(f)) fi)
      | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ())
    c.Circuit.topo;
  t

let schedule t consumer =
  match Circuit.node t.c consumer with
  | Circuit.Gate _ ->
    if not t.queued.(consumer) then begin
      t.queued.(consumer) <- true;
      let lvl = t.c.Circuit.level.(consumer) in
      t.pending.(lvl) <- consumer :: t.pending.(lvl)
    end
  | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ()

let announce t net =
  Array.iter (fun consumer -> schedule t consumer) t.c.Circuit.fanout.(net)

let set_net t net v =
  if not (V3.equal t.v.(net) v) then begin
    t.v.(net) <- v;
    announce t net
  end

let set_input t net v =
  if not (Circuit.is_input t.c net) then
    invalid_arg (Printf.sprintf "Event_sim.set_input: net %d is not an input" net);
  set_net t net v

let set_ff t net v =
  if not (Circuit.is_dff t.c net) then
    invalid_arg (Printf.sprintf "Event_sim.set_ff: net %d is not a flip-flop" net);
  set_net t net v

let settle t =
  let depth = Array.length t.pending - 1 in
  for lvl = 0 to depth do
    (* New events may only be scheduled at strictly higher levels. *)
    let batch = t.pending.(lvl) in
    t.pending.(lvl) <- [];
    List.iter
      (fun i ->
        t.queued.(i) <- false;
        match Circuit.node t.c i with
        | Circuit.Gate (g, fi) ->
          t.events <- t.events + 1;
          let nv = Gate.eval g (Array.map (fun f -> t.v.(f)) fi) in
          if not (V3.equal nv t.v.(i)) then begin
            t.v.(i) <- nv;
            announce t i
          end
        | Circuit.Input | Circuit.Const _ | Circuit.Dff _ -> ())
      batch
  done

let clock t =
  settle t;
  let dffs = t.c.Circuit.dffs in
  Array.iteri
    (fun k ff ->
      match Circuit.node t.c ff with
      | Circuit.Dff data -> t.latch_buf.(k) <- t.v.(data)
      | Circuit.Input | Circuit.Const _ | Circuit.Gate _ -> assert false)
    dffs;
  Array.iteri (fun k ff -> set_net t ff t.latch_buf.(k)) dffs;
  settle t

let value t net = t.v.(net)
let events t = t.events
