(** Value-change-dump (VCD) export for waveform debugging.

    Renders a recorded per-cycle trace of selected nets in the standard
    IEEE 1364 VCD text format readable by GTKWave and friends; one
    timestep per clock cycle. *)

open Fst_logic
open Fst_netlist

(** [render c ~nets ~trace] renders a dump for [nets], where
    [trace.(t).(k)] is the value of [nets.(k)] at cycle [t]. Net names are
    sanitized for VCD (spaces become underscores). *)
val render : Circuit.t -> nets:int array -> trace:V3.t array array -> string

(** [of_stimulus c ~nets stim] simulates the fault-free machine over
    [stim] (recording before each clock edge) and renders the dump. *)
val of_stimulus :
  Circuit.t -> nets:int array -> (int * V3.t) list array -> string

(** [write_file c ~nets ~trace path] writes [render] output to [path]. *)
val write_file :
  Circuit.t -> nets:int array -> trace:V3.t array array -> string -> unit
