(** Event-driven three-valued simulation.

    Functionally equivalent to {!Sim} but only re-evaluates logic reached
    by value changes — the classic levelized event-driven scheme. In scan
    mode most activity hugs the chain, so long shift sequences are much
    cheaper than full sweeps; the [events] counter exposes the activity
    for measurement. *)

open Fst_logic
open Fst_netlist

type t

val create : Circuit.t -> t

(** [set_input t net v] schedules a primary-input change. *)
val set_input : t -> int -> V3.t -> unit

(** [set_ff t net v] forces a flip-flop output (test setup). *)
val set_ff : t -> int -> V3.t -> unit

(** [settle t] propagates all pending events through the combinational
    logic (levelized, each gate at most once per wave). *)
val settle : t -> unit

(** [clock t] latches every flip-flop simultaneously and settles. *)
val clock : t -> unit

val value : t -> int -> V3.t

(** [events t] is the number of gate evaluations performed so far. *)
val events : t -> int
