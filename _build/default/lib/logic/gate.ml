type t = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

let equal (a : t) (b : t) = a = b
let all = [ And; Nand; Or; Nor; Xor; Xnor; Not; Buf ]

let arity_ok g n =
  match g with
  | Not | Buf -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 2

let controlling = function
  | And | Nand -> Some V3.Zero
  | Or | Nor -> Some V3.One
  | Xor | Xnor | Not | Buf -> None

let controlled_output = function
  | And -> V3.Zero
  | Nand -> V3.One
  | Or -> V3.One
  | Nor -> V3.Zero
  | (Xor | Xnor | Not | Buf) as g ->
    invalid_arg
      (Printf.sprintf "Gate.controlled_output: %s has no controlling value"
         (match g with
          | Xor -> "xor"
          | Xnor -> "xnor"
          | Not -> "not"
          | Buf -> "buf"
          | And | Nand | Or | Nor -> assert false))

let inverting = function
  | Nand | Nor | Not | Xnor -> true
  | And | Or | Buf | Xor -> false

let fold_fanins base combine fanins =
  let acc = ref base in
  for i = 0 to Array.length fanins - 1 do
    acc := combine !acc fanins.(i)
  done;
  !acc

let eval g fanins =
  match g with
  | And -> fold_fanins V3.One V3.band fanins
  | Nand -> V3.bnot (fold_fanins V3.One V3.band fanins)
  | Or -> fold_fanins V3.Zero V3.bor fanins
  | Nor -> V3.bnot (fold_fanins V3.Zero V3.bor fanins)
  | Xor -> fold_fanins V3.Zero V3.bxor fanins
  | Xnor -> V3.bnot (fold_fanins V3.Zero V3.bxor fanins)
  | Not -> V3.bnot fanins.(0)
  | Buf -> fanins.(0)

let eval_list g fanins = eval g (Array.of_list fanins)

let to_string = function
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Not -> "NOT"
  | Buf -> "BUF"

let of_string s =
  match String.uppercase_ascii s with
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "NOT" | "INV" -> Some Not
  | "BUF" | "BUFF" -> Some Buf
  | _ -> None

let pp ppf g = Fmt.string ppf (to_string g)
