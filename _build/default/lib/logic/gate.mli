(** Gate types of the mapped netlists (the MCNC-style nand/nor library the
    paper maps to, plus the inverting/buffering and xor cells needed by
    inserted test points and generated circuits). *)

type t = And | Nand | Or | Nor | Xor | Xnor | Not | Buf

val equal : t -> t -> bool
val all : t list

(** [arity_ok g n] checks that [n] fanins is legal for gate [g]
    ([Not]/[Buf] take exactly one input, the rest at least two). *)
val arity_ok : t -> int -> bool

(** [controlling g] is the input value that determines the output of [g]
    regardless of the other inputs ([Some Zero] for and/nand, [Some One] for
    or/nor, [None] for xor/xnor/not/buf). *)
val controlling : t -> V3.t option

(** [controlled_output g] is the output produced when a controlling value is
    present at some input. Raises [Invalid_argument] for gates without a
    controlling value. *)
val controlled_output : t -> V3.t

(** [inverting g] is [true] when the gate inverts the parity of a sensitized
    path through it (nand, nor, not, xnor). *)
val inverting : t -> bool

(** [eval g fanins] evaluates [g] over three-valued fanin values. *)
val eval : t -> V3.t array -> V3.t

(** [eval_list g fanins] is [eval] over a list. *)
val eval_list : t -> V3.t list -> V3.t

val to_string : t -> string
val of_string : string -> t option
val pp : t Fmt.t
