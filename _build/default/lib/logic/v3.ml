type t = Zero | One | X

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let rank = function Zero -> 0 | One -> 1 | X -> 2
let compare a b = Int.compare (rank a) (rank b)
let of_bool b = if b then One else Zero

let to_bool = function
  | Zero -> Some false
  | One -> Some true
  | X -> None

let is_binary = function Zero | One -> true | X -> false

let band a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X), (One | X) -> X

let bor a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X), (Zero | X) -> X

let bnot = function Zero -> One | One -> Zero | X -> X

let bxor a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One

let refines a b = equal b X || equal a b
let to_int = rank

let of_int = function
  | 0 -> Zero
  | 1 -> One
  | 2 -> X
  | n -> invalid_arg (Printf.sprintf "V3.of_int: %d" n)

let to_char = function Zero -> '0' | One -> '1' | X -> 'X'

let of_char = function
  | '0' -> Zero
  | '1' -> One
  | 'X' | 'x' -> X
  | c -> invalid_arg (Printf.sprintf "V3.of_char: %c" c)

let pp ppf v = Fmt.char ppf (to_char v)
