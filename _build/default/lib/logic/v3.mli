(** Three-valued logic: the value system used by good-machine and faulty
    machine simulation, scan-mode constant propagation and fault
    classification. [X] is the usual unknown/"either" value of ternary
    (Kleene) logic. *)

type t = Zero | One | X

val equal : t -> t -> bool
val compare : t -> t -> int

(** [of_bool b] is [One] if [b], else [Zero]. *)
val of_bool : bool -> t

(** [to_bool v] is [Some true]/[Some false] for the binary values and [None]
    for [X]. *)
val to_bool : t -> bool option

val is_binary : t -> bool

(** Kleene conjunction: [Zero] dominates. *)
val band : t -> t -> t

(** Kleene disjunction: [One] dominates. *)
val bor : t -> t -> t

(** Exclusive or; [X] if either operand is [X]. *)
val bxor : t -> t -> t

val bnot : t -> t

(** [refines a b] holds when [a] is at least as defined as [b]: either
    [b = X], or [a = b]. Used to state simulation monotonicity. *)
val refines : t -> t -> bool

(** Compact integer encoding used by the array-based simulators:
    [Zero] = 0, [One] = 1, [X] = 2. *)

val to_int : t -> int
val of_int : int -> t

val pp : t Fmt.t
val to_char : t -> char
val of_char : char -> t
