lib/logic/dval.mli: Fmt Gate V3
