lib/logic/gate.mli: Fmt V3
