lib/logic/gate.ml: Array Fmt Printf String V3
