lib/logic/v3.mli: Fmt
