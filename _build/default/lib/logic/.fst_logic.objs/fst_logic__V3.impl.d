lib/logic/v3.ml: Fmt Int Printf
