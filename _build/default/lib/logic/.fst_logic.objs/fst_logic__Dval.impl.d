lib/logic/dval.ml: Array Fmt Gate Printf String V3
