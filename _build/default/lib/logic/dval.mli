(** The composite good/faulty value pairs used by the ATPG engines.

    A value tracks the signal in the fault-free machine ([good]) and in the
    faulty machine ([faulty]) simultaneously; the classic five-valued
    D-calculus symbols are the binary/binary combinations:
    [0/0 = zero], [1/1 = one], [1/0 = d], [0/1 = dbar], and anything
    involving [X] collapses to partial knowledge. *)

type t = private { good : V3.t; faulty : V3.t }

val make : good:V3.t -> faulty:V3.t -> t

val zero : t
val one : t
val x : t

(** [d] is 1 in the good machine, 0 in the faulty machine. *)
val d : t

(** [dbar] is 0 in the good machine, 1 in the faulty machine. *)
val dbar : t

val equal : t -> t -> bool

(** [of_v3 v] lifts a value present in both machines. *)
val of_v3 : V3.t -> t

(** [is_fault_effect v] holds when the two machines provably differ
    ([d] or [dbar]). *)
val is_fault_effect : t -> bool

(** [is_binary v] holds when both components are binary. *)
val is_binary : t -> bool

(** [has_x v] holds when either component is [X]. *)
val has_x : t -> bool

val eval : Gate.t -> t array -> t
val bnot : t -> t
val pp : t Fmt.t
val to_string : t -> string
