type t = { good : V3.t; faulty : V3.t }

let make ~good ~faulty = { good; faulty }
let zero = { good = V3.Zero; faulty = V3.Zero }
let one = { good = V3.One; faulty = V3.One }
let x = { good = V3.X; faulty = V3.X }
let d = { good = V3.One; faulty = V3.Zero }
let dbar = { good = V3.Zero; faulty = V3.One }
let equal a b = V3.equal a.good b.good && V3.equal a.faulty b.faulty
let of_v3 v = { good = v; faulty = v }

let is_fault_effect v =
  V3.is_binary v.good && V3.is_binary v.faulty && not (V3.equal v.good v.faulty)

let is_binary v = V3.is_binary v.good && V3.is_binary v.faulty
let has_x v = not (is_binary v)

let eval g fanins =
  let goods = Array.map (fun v -> v.good) fanins in
  let faults = Array.map (fun v -> v.faulty) fanins in
  { good = Gate.eval g goods; faulty = Gate.eval g faults }

let bnot v = { good = V3.bnot v.good; faulty = V3.bnot v.faulty }

let to_string v =
  match v.good, v.faulty with
  | V3.One, V3.Zero -> "D"
  | V3.Zero, V3.One -> "D'"
  | g, f when V3.equal g f -> String.make 1 (V3.to_char g)
  | g, f -> Printf.sprintf "%c/%c" (V3.to_char g) (V3.to_char f)

let pp ppf v = Fmt.string ppf (to_string v)
