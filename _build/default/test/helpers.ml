(* Shared fixtures and generators for the test suites. *)

open Fst_logic
open Fst_netlist

let v3 = Alcotest.testable V3.pp V3.equal

let check_v3 = Alcotest.check v3

(* All three-valued values, for exhaustive truth-table checks. *)
let all_v3 = [ V3.Zero; V3.One; V3.X ]

(* A tiny sequential circuit in the spirit of the paper's Figure 2: a
   two-flip-flop chain whose scan path runs through an AND gate with a
   primary-input side input.

       pi0 --------.
                    \
       ff0 --------[AND g0]---- ff1(data)
       ff1 --------[NOT g1]---- po

   Returns (circuit, pi0, ff0, ff1, g0). *)
let figure2_circuit () =
  let b = Builder.create ~name:"fig2" () in
  let pi0 = Builder.add_input ~name:"pi0" b in
  let ff0 = Builder.add_dff_placeholder ~name:"ff0" b in
  let ff1 = Builder.add_dff_placeholder ~name:"ff1" b in
  let g0 = Builder.add_gate ~name:"g0" b Gate.And [ pi0; ff0 ] in
  let g1 = Builder.add_gate ~name:"g1" b Gate.Not [ ff1 ] in
  Builder.connect_dff b ~ff:ff1 ~data:g0;
  Builder.connect_dff b ~ff:ff0 ~data:g1;
  Builder.mark_output b g1;
  (Builder.freeze b, pi0, ff0, ff1, g0)

(* A small combinational circuit with inputs and outputs only, for
   brute-force ATPG cross-checks. *)
let random_comb_circuit rng ~inputs ~gates =
  let b = Builder.create ~name:"comb" () in
  let pis = Array.init inputs (fun i -> Builder.add_input ~name:(Printf.sprintf "i%d" i) b) in
  let pool = ref (Array.to_list pis) in
  let nets = ref (Array.to_list pis) in
  for k = 0 to gates - 1 do
    let g =
      Fst_gen.Rng.weighted rng
        [
          (3, Gate.Nand); (3, Gate.Nor); (2, Gate.And); (2, Gate.Or);
          (2, Gate.Not); (1, Gate.Buf); (1, Gate.Xor); (1, Gate.Xnor);
        ]
    in
    let arity = match g with Gate.Not | Gate.Buf -> 1 | _ -> 2 in
    let arr = Array.of_list !pool in
    let fanins = List.init arity (fun _ -> Fst_gen.Rng.pick rng arr) in
    let net = Builder.add_gate ~name:(Printf.sprintf "g%d" k) b g fanins in
    pool := net :: !pool;
    nets := net :: !nets
  done;
  (* Outputs: nets with no consumers. *)
  let frozen_probe = !pool in
  let used = Hashtbl.create 16 in
  List.iter
    (fun n ->
      match Builder.node b n with
      | Circuit.Gate (_, fi) -> Array.iter (fun f -> Hashtbl.replace used f ()) fi
      | _ -> ())
    frozen_probe;
  List.iter
    (fun n -> if not (Hashtbl.mem used n) then Builder.mark_output b n)
    (List.rev frozen_probe);
  Builder.freeze b

(* A small random sequential circuit via the generator. *)
let small_seq_circuit ?(gates = 80) ?(ffs = 8) seed =
  Fst_gen.Gen.generate
    { Fst_gen.Gen.name = Printf.sprintf "t%Ld" seed; gates; ffs; pis = 5; pos = 3; seed }

(* Exhaustive good/faulty evaluation of a combinational circuit over all
   binary input assignments; returns true if some assignment detects the
   fault at some output. *)
let brute_force_detectable (c : Circuit.t) (fault : Fst_fault.Fault.t) =
  let inputs = c.Circuit.inputs in
  let n = Array.length inputs in
  assert (n <= 16);
  let detected = ref false in
  for code = 0 to (1 lsl n) - 1 do
    if not !detected then begin
      let stim =
        [| Array.to_list
             (Array.mapi
                (fun k pi -> (pi, V3.of_bool (code land (1 lsl k) <> 0)))
                inputs) |]
      in
      match
        Fst_fsim.Fsim.Serial.detect c ~fault ~observe:c.Circuit.outputs stim
      with
      | Some _ -> detected := true
      | None -> ()
    end
  done;
  !detected

let contains_substring ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* Deterministic qcheck registration: a fixed random state keeps the suite
   reproducible run to run. *)
let qcheck test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260705 |]) test
