open Fst_logic
open Fst_netlist
open Fst_fault
open Fst_atpg
module Q = QCheck

let comb_view (c : Circuit.t) =
  View.make c
    ~free:(Array.to_list c.Circuit.inputs)
    ~fixed:[]
    ~observe:(Array.to_list c.Circuit.outputs |> List.map (fun o -> View.Onet o))

let run_assignment_detects c fault assignment =
  let stim = [| assignment |] in
  Fst_fsim.Fsim.Serial.detect c ~fault ~observe:c.Circuit.outputs stim <> None

let test_and_gate_test () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let b2 = Builder.add_input ~name:"b" b in
  let y = Builder.add_gate ~name:"y" b Gate.And [ a; b2 ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let view = comb_view c in
  let fault = { Fault.site = Fault.Stem y; stuck = false } in
  match Podem.run view ~faults:[ fault ] with
  | Podem.Test assignment, _ ->
    Alcotest.(check bool) "test detects" true
      (run_assignment_detects c fault assignment);
    (* The only test for y s-a-0 is a=b=1. *)
    Alcotest.(check bool) "a assigned 1" true
      (List.mem (a, V3.One) assignment);
    Alcotest.(check bool) "b assigned 1" true
      (List.mem (b2, V3.One) assignment)
  | (Podem.Untestable | Podem.Aborted), _ -> Alcotest.fail "expected a test"

let test_redundant_fault_untestable () =
  (* y = OR(a, NOT a) is constant 1: y s-a-1 is untestable. *)
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let na = Builder.add_gate ~name:"na" b Gate.Not [ a ] in
  let y = Builder.add_gate ~name:"y" b Gate.Or [ a; na ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let fault = { Fault.site = Fault.Stem y; stuck = true } in
  match Podem.run (comb_view c) ~faults:[ fault ] with
  | Podem.Untestable, _ -> ()
  | Podem.Test _, _ -> Alcotest.fail "redundant fault got a test"
  | Podem.Aborted, _ -> Alcotest.fail "redundant fault aborted"

let test_fixed_input_blocks_test () =
  (* y = AND(a, k) with k tied to 0: a faults are untestable. *)
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let k = Builder.add_input ~name:"k" b in
  let y = Builder.add_gate ~name:"y" b Gate.And [ a; k ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let view =
    View.make c ~free:[ a ] ~fixed:[ (k, V3.Zero) ] ~observe:[ View.Onet y ]
  in
  let fault = { Fault.site = Fault.Stem a; stuck = true } in
  match Podem.run view ~faults:[ fault ] with
  | Podem.Untestable, _ -> ()
  | Podem.Test _, _ -> Alcotest.fail "blocked fault got a test"
  | Podem.Aborted, _ -> Alcotest.fail "blocked fault aborted"

let test_branch_fault_test () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let y1 = Builder.add_gate ~name:"y1" b Gate.Buf [ a ] in
  let y2 = Builder.add_gate ~name:"y2" b Gate.Not [ a ] in
  Builder.mark_output b y1;
  Builder.mark_output b y2;
  let c = Builder.freeze b in
  let fault = { Fault.site = Fault.Branch { node = y1; pin = 0 }; stuck = true } in
  match Podem.run (comb_view c) ~faults:[ fault ] with
  | Podem.Test assignment, _ ->
    Alcotest.(check bool) "test detects" true
      (run_assignment_detects c fault assignment)
  | (Podem.Untestable | Podem.Aborted), _ ->
    Alcotest.fail "branch fault should be testable"

(* PODEM agrees with exhaustive search on random small circuits:
   - a produced test must actually detect (verified by fault simulation);
   - an Untestable verdict must match the brute-force answer. *)
let prop_podem_vs_brute_force =
  Q.Test.make ~name:"podem agrees with brute force" ~count:30
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let rng = Fst_gen.Rng.create seed in
      let c = Helpers.random_comb_circuit rng ~inputs:5 ~gates:14 in
      let view = comb_view c in
      let scoap = Fst_testability.Scoap.compute view in
      let faults = Fault.collapse c (Fault.universe c) in
      let ok = ref true in
      Array.iter
        (fun fault ->
          match Podem.run ~backtrack_limit:4000 ~scoap view ~faults:[ fault ] with
          | Podem.Test assignment, _ ->
            if not (run_assignment_detects c fault assignment) then ok := false
          | Podem.Untestable, _ ->
            if Helpers.brute_force_detectable c fault then ok := false
          | Podem.Aborted, _ -> ())
        faults;
      !ok)

(* Multi-site injection: a fault on every copy of a duplicated subcircuit
   (as used in time-frame expansion) is found when any copy detects. *)
let test_multi_site () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let en = Builder.add_input ~name:"en" b in
  let y1 = Builder.add_gate ~name:"y1" b Gate.And [ a; en ] in
  let y2 = Builder.add_gate ~name:"y2" b Gate.Or [ a; en ] in
  Builder.mark_output b y1;
  Builder.mark_output b y2;
  let c = Builder.freeze b in
  let faults =
    [
      { Fault.site = Fault.Stem y1; stuck = false };
      { Fault.site = Fault.Stem y2; stuck = false };
    ]
  in
  match Podem.run (comb_view c) ~faults with
  | Podem.Test _, _ -> ()
  | (Podem.Untestable | Podem.Aborted), _ ->
    Alcotest.fail "multi-site fault should be trivially testable"

let test_stats_accounting () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let y = Builder.add_gate ~name:"y" b Gate.Not [ a ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let fault = { Fault.site = Fault.Stem y; stuck = false } in
  let _, st = Podem.run (comb_view c) ~faults:[ fault ] in
  Alcotest.(check bool) "implied at least once" true (st.Podem.implications >= 1)

let suite =
  [
    Alcotest.test_case "and gate test" `Quick test_and_gate_test;
    Alcotest.test_case "redundant fault untestable" `Quick test_redundant_fault_untestable;
    Alcotest.test_case "fixed input blocks test" `Quick test_fixed_input_blocks_test;
    Alcotest.test_case "branch fault test" `Quick test_branch_fault_test;
    Helpers.qcheck prop_podem_vs_brute_force;
    Alcotest.test_case "multi-site injection" `Quick test_multi_site;
    Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
  ]
