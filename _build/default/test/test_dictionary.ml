open Fst_netlist
open Fst_fault
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small seed =
  let c = Helpers.small_seq_circuit ~gates:120 ~ffs:8 seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains = 2 } c

let random_blocks scanned config rng n =
  let view =
    View.scan_mode scanned ~constraints:config.Scan.constraints ()
  in
  List.init n (fun _ ->
      let ff_values, pi_values =
        List.partition
          (fun (net, _) -> Circuit.is_dff scanned net)
          (Fst_atpg.Rtpg.uniform rng view)
      in
      Sequences.of_comb_test scanned config ~ff_values ~pi_values)

let test_signatures_match_observation () =
  let scanned, config = scan_small 3L in
  let rng = Fst_gen.Rng.create 1L in
  let blocks = random_blocks scanned config rng 12 in
  let faults =
    Fault.collapse scanned (Fault.universe scanned)
    |> Array.to_list
    |> List.filteri (fun i _ -> i mod 9 = 0)
    |> Array.of_list
  in
  let d =
    Dictionary.build scanned ~faults ~observe:scanned.Circuit.outputs ~blocks
  in
  Alcotest.(check int) "blocks recorded" 12 (Dictionary.num_blocks d);
  (* A dictionary fault observed on the "tester" matches its own entry, so
     ranking it returns distance 0 at the top. *)
  Array.iteri
    (fun i fault ->
      let observed = Dictionary.observe_defect scanned d ~fault ~blocks in
      Alcotest.(check (list int))
        (Printf.sprintf "signature %d consistent" i)
        (Dictionary.signature d ~fault_index:i)
        observed;
      match Dictionary.rank d ~observed with
      | (_, 0) :: _ -> ()
      | (_, dist) :: _ ->
        Alcotest.failf "own signature at distance %d" dist
      | [] -> Alcotest.fail "empty ranking")
    faults

(* The true fault is always among the minimal-distance candidates, and the
   candidates at distance 0 share its signature exactly. *)
let prop_ranking_finds_injected_fault =
  Q.Test.make ~name:"dictionary ranking finds the injected fault" ~count:6
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 7L) in
      let blocks = random_blocks scanned config rng 16 in
      let faults = Fault.collapse scanned (Fault.universe scanned) in
      let d =
        Dictionary.build scanned ~faults ~observe:scanned.Circuit.outputs
          ~blocks
      in
      let target = Fst_gen.Rng.int rng (Array.length faults) in
      let observed =
        Dictionary.observe_defect scanned d ~fault:faults.(target) ~blocks
      in
      match Dictionary.rank d ~observed with
      | [] -> false
      | (_, best) :: _ as ranking ->
        best = 0
        && List.exists (fun (i, dist) -> i = target && dist = 0) ranking)

let test_distinguishability () =
  let scanned, config = scan_small 5L in
  let rng = Fst_gen.Rng.create 2L in
  let faults = Fault.collapse scanned (Fault.universe scanned) in
  let few = Dictionary.build scanned ~faults ~observe:scanned.Circuit.outputs
      ~blocks:(random_blocks scanned config rng 2) in
  let many = Dictionary.build scanned ~faults ~observe:scanned.Circuit.outputs
      ~blocks:(random_blocks scanned config rng 16) in
  (* More sequences can only refine the partition. *)
  Alcotest.(check bool)
    (Printf.sprintf "resolution grows (%d -> %d)"
       (Dictionary.distinguishable few) (Dictionary.distinguishable many))
    true
    (Dictionary.distinguishable many >= Dictionary.distinguishable few)

let suite =
  [
    Alcotest.test_case "signatures match observation" `Quick test_signatures_match_observation;
    Helpers.qcheck prop_ranking_finds_injected_fault;
    Alcotest.test_case "distinguishability" `Quick test_distinguishability;
  ]
