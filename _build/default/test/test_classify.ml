open Fst_logic
open Fst_netlist
open Fst_fault
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small ?(gates = 150) ?(ffs = 10) ?(chains = 2) seed =
  let c = Helpers.small_seq_circuit ~gates ~ffs seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains; justify_depth = 4 } c

(* The paper's Figure 2 scenario: an AND gate on the scan path whose side
   input pi0 is justified (or forced) to 1 in scan mode. The fault
   "side input s-a-0" breaks the chain (category 1: it forces chain nets);
   "side input s-a-1" leaves the chain untouched (category 3). *)
let test_figure2_categories () =
  let c, pi0, _ff0, _ff1, _g0 = Helpers.figure2_circuit () in
  let scanned, config = Tpi.insert ~options:{ Tpi.default_options with Tpi.chains = 1; justify_depth = 4 } c in
  let faults =
    [|
      { Fault.site = Fault.Stem pi0; stuck = false };
      { Fault.site = Fault.Stem pi0; stuck = true };
    |]
  in
  let r = Classify.run scanned config faults in
  (match r.Classify.infos.(0).Classify.category with
   | Classify.Cat1 | Classify.Cat2 -> ()
   | Classify.Cat3 -> Alcotest.fail "pi0 s-a-0 must affect the chain");
  match r.Classify.infos.(1).Classify.category with
  | Classify.Cat3 -> ()
  | Classify.Cat1 | Classify.Cat2 ->
    Alcotest.fail "pi0 s-a-1 agrees with the scan-mode value; chain untouched"

let test_chain_stem_faults_are_cat1 () =
  let scanned, config = scan_small 3L in
  let ch = config.Scan.chains.(0) in
  let ff = ch.Scan.ffs.(0) in
  let faults =
    [|
      { Fault.site = Fault.Stem ff; stuck = false };
      { Fault.site = Fault.Stem ff; stuck = true };
    |]
  in
  let r = Classify.run scanned config faults in
  Array.iter
    (fun info ->
      match info.Classify.category with
      | Classify.Cat1 -> ()
      | Classify.Cat2 | Classify.Cat3 ->
        Alcotest.fail "a stuck chain flip-flop output must be category 1")
    r.Classify.infos

let test_locations_ordering () =
  let scanned, config = scan_small 5L in
  let faults = Fault.collapse scanned (Fault.universe scanned) in
  let r = Classify.run scanned config faults in
  Array.iter
    (fun info ->
      let rec sorted = function
        | [] | [ _ ] -> true
        | (c1, s1, _) :: ((c2, s2, _) :: _ as rest) ->
          (c1 < c2 || (c1 = c2 && s1 <= s2)) && sorted rest
      in
      Alcotest.(check bool) "locations sorted" true (sorted info.Classify.locations);
      match info.Classify.category with
      | Classify.Cat3 ->
        Alcotest.(check int) "cat3 has no locations" 0
          (List.length info.Classify.locations)
      | Classify.Cat1 | Classify.Cat2 ->
        Alcotest.(check bool) "cat1/2 have locations" true
          (info.Classify.locations <> []))
    r.Classify.infos

let test_cat2_priority () =
  let scanned, config = scan_small 7L in
  let faults = Fault.collapse scanned (Fault.universe scanned) in
  let r = Classify.run scanned config faults in
  Array.iter
    (fun info ->
      let has_side_x =
        List.exists
          (fun (_, _, k) -> k = Classify.Side_unknown)
          info.Classify.locations
      in
      match info.Classify.category with
      | Classify.Cat2 ->
        Alcotest.(check bool) "cat2 has a side-unknown location" true has_side_x
      | Classify.Cat1 ->
        Alcotest.(check bool) "cat1 has no side-unknown location" false has_side_x
      | Classify.Cat3 -> ())
    r.Classify.infos

(* Category-1 faults are detected by the alternating sequence (the paper's
   claim for the easy faults); simulated ground truth. *)
let prop_cat1_detected_by_alternating =
  Q.Test.make ~name:"category-1 faults caught by alternating sequence" ~count:8
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small ~gates:120 ~ffs:8 ~chains:1 seed in
      let faults = Fault.collapse scanned (Fault.universe scanned) in
      let r = Classify.run scanned config faults in
      let stim = Sequences.alternating scanned config ~repeats:3 in
      let cat1 = Array.map (fun i -> faults.(i)) r.Classify.easy in
      let out =
        Fst_fsim.Fsim.Parallel.detect_all scanned ~faults:cat1
          ~observe:scanned.Circuit.outputs stim
      in
      Array.for_all (fun o -> o <> None) out)

(* Category-3 faults never affect the chains: under any fault of category 3
   the chains still shift correctly (checked by shifting a pattern on the
   faulty machine and reading the faulty flip-flop values directly). *)
let prop_cat3_chain_untouched =
  Q.Test.make ~name:"category-3 faults leave shifting intact" ~count:6
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small ~gates:100 ~ffs:6 ~chains:1 seed in
      let faults = Fault.collapse scanned (Fault.universe scanned) in
      let r = Classify.run scanned config faults in
      let ch = config.Scan.chains.(0) in
      let len = Array.length ch.Scan.ffs in
      let desired = Array.init len (fun p -> V3.of_bool (p mod 3 <> 1)) in
      let stream = Scan.scan_in_stream ch ~values:desired in
      (* A couple of extra cycles so the fully-loaded state is observed. *)
      let stim =
        Array.init (len + 2) (fun t ->
            let base = if t = 0 then config.Scan.constraints else [] in
            let v = if t < len then stream.(t) else V3.X in
            (ch.Scan.scan_in, v) :: base)
      in
      let cat3 =
        Array.to_list r.Classify.infos
        |> List.filter (fun i -> i.Classify.category = Classify.Cat3)
        |> List.map (fun i -> i.Classify.fault)
      in
      let sample =
        List.filteri (fun i _ -> i mod (max 1 (List.length cat3 / 30)) = 0) cat3
      in
      List.for_all
        (fun fault ->
          (* Simulate the faulty machine directly and read the chain. *)
          let module S = Fst_fsim.Fsim.Serial in
          (* Reuse the serial machinery through detect on a virtual
             observation of each flip-flop: if the faulty chain state were
             wrong, ff values would differ from the good machine. *)
          let observe = ch.Scan.ffs in
          S.detect scanned ~fault ~observe stim = None)
        sample)

let test_affecting_fraction_sane () =
  let scanned, config = scan_small ~gates:300 ~ffs:20 13L in
  let faults = Fault.collapse scanned (Fault.universe scanned) in
  let r = Classify.run scanned config faults in
  let frac =
    float_of_int r.Classify.affecting /. float_of_int (Array.length faults)
  in
  (* The paper reports ~25% of faults affecting the chain; synthetic
     circuits land in a broad band around that. *)
  Alcotest.(check bool)
    (Printf.sprintf "fraction %.2f in (0, 0.9)" frac)
    true
    (frac > 0.0 && frac < 0.9);
  Alcotest.(check int) "easy+hard = affecting" r.Classify.affecting
    (Array.length r.Classify.easy + Array.length r.Classify.hard)

let suite =
  [
    Alcotest.test_case "figure2 categories" `Quick test_figure2_categories;
    Alcotest.test_case "chain stems are cat1" `Quick test_chain_stem_faults_are_cat1;
    Alcotest.test_case "locations ordering" `Quick test_locations_ordering;
    Alcotest.test_case "cat2 priority" `Quick test_cat2_priority;
    Helpers.qcheck prop_cat1_detected_by_alternating;
    Helpers.qcheck prop_cat3_chain_untouched;
    Alcotest.test_case "affecting fraction sane" `Quick test_affecting_fraction_sane;
  ]
