open Fst_netlist
module Q = QCheck

let test_rng_determinism () =
  let a = Fst_gen.Rng.create 42L and b = Fst_gen.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Fst_gen.Rng.int a 1000)
      (Fst_gen.Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Fst_gen.Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Fst_gen.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Fst_gen.Rng.float rng in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_weighted () =
  let rng = Fst_gen.Rng.create 9L in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let v = Fst_gen.Rng.weighted rng [ (1, `A); (2, `B); (7, `C) ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "c dominates" true (get `C > get `B && get `B > get `A)

let test_generator_determinism () =
  let p = { Fst_gen.Gen.name = "d"; gates = 200; ffs = 12; pis = 6; pos = 4; seed = 5L } in
  let a = Fst_gen.Gen.generate p and b = Fst_gen.Gen.generate p in
  Alcotest.(check string) "identical netlists" (Netfile.to_string a)
    (Netfile.to_string b)

let prop_generator_respects_profile =
  Q.Test.make ~name:"generator respects the profile" ~count:15
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let p =
        { Fst_gen.Gen.name = "p"; gates = 300; ffs = 20; pis = 8; pos = 6; seed }
      in
      let c = Fst_gen.Gen.generate p in
      Circuit.dff_count c = 20
      && Circuit.input_count c = 8
      && Array.length c.Circuit.outputs >= 6
      && abs (Circuit.gate_count c - 300) < 100)

let prop_all_logic_observable =
  Q.Test.make ~name:"no dangling logic after compaction" ~count:10
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let c = Helpers.small_seq_circuit ~gates:150 ~ffs:10 seed in
      let ok = ref true in
      Array.iteri
        (fun i nd ->
          match nd with
          | Circuit.Gate _ | Circuit.Dff _ ->
            if Array.length c.Circuit.fanout.(i) = 0 && not (Circuit.is_output c i)
            then ok := false
          | Circuit.Input | Circuit.Const _ -> ())
        c.Circuit.nodes;
      !ok)

let test_scaled_profile () =
  let p = { Fst_gen.Gen.name = "s"; gates = 1000; ffs = 100; pis = 20; pos = 10; seed = 1L } in
  let q = Fst_gen.Gen.scaled ~factor:0.1 p in
  Alcotest.(check int) "gates scaled" 100 q.Fst_gen.Gen.gates;
  Alcotest.(check int) "ffs scaled" 10 q.Fst_gen.Gen.ffs;
  let tiny = Fst_gen.Gen.scaled ~factor:0.0001 p in
  Alcotest.(check bool) "floors hold" true
    (tiny.Fst_gen.Gen.gates >= 2 && tiny.Fst_gen.Gen.ffs >= 1)

let test_suite_names () =
  let entries = Fst_gen.Suite.suite ~scale:0.05 () in
  Alcotest.(check int) "12 circuits" 12 (List.length entries);
  let e = Fst_gen.Suite.find ~scale:0.05 "s38584" in
  Alcotest.(check int) "chains" 8 e.Fst_gen.Suite.chains;
  (match Fst_gen.Suite.find "nosuch" with
   | exception Not_found -> ()
   | _ -> Alcotest.fail "expected Not_found")

let test_suite_generates () =
  let e = Fst_gen.Suite.find ~scale:0.02 "s13207" in
  let c = Fst_gen.Gen.generate e.Fst_gen.Suite.profile in
  Alcotest.(check bool) "has flip-flops" true (Circuit.dff_count c > 0);
  Alcotest.(check string) "named" "s13207" c.Circuit.name

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng weighted" `Quick test_rng_weighted;
    Alcotest.test_case "generator determinism" `Quick test_generator_determinism;
    Helpers.qcheck prop_generator_respects_profile;
    Helpers.qcheck prop_all_logic_observable;
    Alcotest.test_case "scaled profile" `Quick test_scaled_profile;
    Alcotest.test_case "suite names" `Quick test_suite_names;
    Alcotest.test_case "suite generates" `Quick test_suite_generates;
  ]
