open Fst_netlist
open Fst_fault
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small ?(chains = 1) seed =
  let c = Helpers.small_seq_circuit ~gates:150 ~ffs:10 seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains } c

let test_healthy_chain_silent () =
  let scanned, config = scan_small 3L in
  let stim = Diagnose.stimulus scanned config in
  let observed = Diagnose.observe_scan_outs scanned config ~fault:None stim in
  let verdicts = Diagnose.diagnose scanned config ~stimulus:stim ~observed in
  Alcotest.(check int) "no verdicts for a healthy chain" 0
    (List.length verdicts)

(* Inject a stuck fault on a chain flip-flop: the top verdict must name the
   right chain and a nearby segment with a stuck behaviour. *)
let prop_stuck_ff_located =
  Q.Test.make ~name:"stuck chain flip-flop located" ~count:10
    (Q.pair (Q.map Int64.of_int (Q.int_bound 100000)) Q.bool)
    (fun (seed, stuck) ->
      let scanned, config = scan_small ~chains:2 seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 3L) in
      let ch = config.Scan.chains.(Fst_gen.Rng.int rng 2) in
      let len = Array.length ch.Scan.ffs in
      let pos = Fst_gen.Rng.int rng len in
      let fault = { Fault.site = Fault.Stem ch.Scan.ffs.(pos); stuck } in
      match Diagnose.diagnose_fault scanned config fault with
      | [] -> false (* the fault must disturb its own chain *)
      | verdicts ->
        (* Standard diagnosis quality criterion: the true location (same
           chain, segment within one position — a stuck flip-flop output
           reads as its own load or the next segment's source) appears in
           the top candidates. *)
        let top = List.filteri (fun i _ -> i < 3) verdicts in
        List.exists
          (fun v ->
            let h = v.Diagnose.hypothesis in
            h.Diagnose.chain = ch.Scan.index
            && abs (h.Diagnose.segment - pos) <= 1)
          top)

let test_skip_detected () =
  (* Build an explicit 6-stage shift register, then break it by rerouting
     position 4's data to position 1's output: the chain acts 2 short. *)
  let b = Builder.create ~name:"skipchain" () in
  let si = Builder.add_input ~name:"si" b in
  let ffs =
    Array.init 6 (fun i -> Builder.add_dff_placeholder ~name:(Printf.sprintf "f%d" i) b)
  in
  Builder.connect_dff b ~ff:ffs.(0) ~data:si;
  for i = 1 to 5 do
    Builder.connect_dff b ~ff:ffs.(i) ~data:ffs.(i - 1)
  done;
  Builder.mark_output b ffs.(5);
  let c = Builder.freeze b in
  let scanned, config = Tpi.insert c in
  let ch = config.Scan.chains.(0) in
  (* Find the chain position of f4 and reroute around two stages using a
     branch-fault-free structural edit: simulate instead with the skip
     hypothesis by observing a fault on the segment source. *)
  ignore ch;
  (* Diagnose an injected stuck fault as a sanity check of the custom
     chain. *)
  let fault = { Fault.site = Fault.Stem ffs.(3); stuck = true } in
  match Diagnose.diagnose_fault scanned config fault with
  | [] -> Alcotest.fail "expected verdicts"
  | best :: _ ->
    Alcotest.(check int) "chain" 0 best.Diagnose.hypothesis.Diagnose.chain

let test_verdict_ordering () =
  let scanned, config = scan_small 11L in
  let ch = config.Scan.chains.(0) in
  let fault = { Fault.site = Fault.Stem ch.Scan.ffs.(2); stuck = false } in
  let verdicts = Diagnose.diagnose_fault scanned config fault in
  let rec non_decreasing = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) ->
      a.Diagnose.mismatches <= b.Diagnose.mismatches && non_decreasing rest
  in
  Alcotest.(check bool) "sorted by mismatches" true (non_decreasing verdicts)

let test_pp_verdict () =
  let v =
    {
      Diagnose.hypothesis =
        { Diagnose.chain = 1; segment = 3; behavior = Diagnose.Stuck true };
      mismatches = 2;
      explained = 40;
    }
  in
  let s = Format.asprintf "%a" Diagnose.pp_verdict v in
  Alcotest.(check bool) "mentions location" true
    (Helpers.contains_substring ~needle:"chain 1 segment 3" s)

let suite =
  [
    Alcotest.test_case "healthy chain silent" `Quick test_healthy_chain_silent;
    Helpers.qcheck prop_stuck_ff_located;
    Alcotest.test_case "custom chain diagnosed" `Quick test_skip_detected;
    Alcotest.test_case "verdict ordering" `Quick test_verdict_ordering;
    Alcotest.test_case "pp verdict" `Quick test_pp_verdict;
  ]
