open Fst_core
module G = Group

let fp index locations = G.footprint_of ~index ~locations

let params = { G.large = 4; med = 3; dist = 2 }

(* The paper's Figure 4: eight faults, LARGE_DIST=4, MED_DIST=3, DIST=2.
   fault1 spans 4 -> group 1; fault2 spans 3 -> group 2 (with fault3 and
   fault4 inside its window); the rest cluster under DIST=2. *)
let figure4 () =
  [
    fp 1 [ (0, 2); (0, 6) ];  (* span 4: locations l=2 and l=6 *)
    fp 2 [ (0, 2); (0, 5) ];  (* span 3 *)
    fp 3 [ (0, 3) ];
    fp 4 [ (0, 4) ];
    fp 5 [ (0, 1) ];
    fp 6 [ (0, 2) ];
    fp 7 [ (0, 6) ];
    fp 8 [ (0, 7) ];
  ]

let kinds groups =
  List.map
    (function
      | G.Solo fp -> `Solo fp.G.index
      | G.Shared { leader; members } ->
        `Shared (leader.G.index, List.map (fun m -> m.G.index) members)
      | G.Cluster { members; _ } ->
        `Cluster (List.map (fun m -> m.G.index) members))
    groups

let test_figure4_grouping () =
  let groups = G.make params (figure4 ()) in
  let ks = kinds groups in
  (* fault1 is solo. *)
  Alcotest.(check bool) "fault1 solo" true (List.mem (`Solo 1) ks);
  (* fault2 leads a shared group containing faults 3 and 4. *)
  let shared =
    List.filter_map (function `Shared x -> Some x | _ -> None) ks
  in
  (match shared with
   | [ (2, members) ] ->
     Alcotest.(check bool) "fault3 rides along" true (List.mem 3 members);
     Alcotest.(check bool) "fault4 rides along" true (List.mem 4 members)
   | _ -> Alcotest.fail "expected exactly one shared group led by fault2");
  (* Remaining faults are clustered with window <= DIST. *)
  let clusters =
    List.filter_map (function `Cluster m -> Some m | _ -> None) ks
  in
  Alcotest.(check bool) "at least two clusters" true (List.length clusters >= 2);
  List.iter
    (fun members ->
      Alcotest.(check bool) "cluster non-empty" true (members <> []))
    clusters

let test_cluster_window_bound () =
  let groups = G.make params (figure4 ()) in
  List.iter
    (function
      | G.Cluster { lo; hi; members; _ } ->
        Alcotest.(check bool) "window bounded" true (hi - lo <= params.G.dist);
        List.iter
          (fun m ->
            match m.G.spans with
            | [ (_, (l1, ln)) ] ->
              Alcotest.(check bool) "member inside window" true
                (l1 >= lo && ln <= hi)
            | _ -> Alcotest.fail "cluster member not single-chain")
          members
      | G.Solo _ | G.Shared _ -> ())
    groups

let test_multi_chain_goes_solo () =
  let groups =
    G.make params [ fp 1 [ (0, 1); (1, 3) ]; fp 2 [ (0, 2) ] ]
  in
  let solos =
    List.filter_map (function G.Solo f -> Some f.G.index | _ -> None) groups
  in
  Alcotest.(check (list int)) "multi-chain fault solo" [ 1 ] solos

let test_every_fault_in_some_group () =
  let fps = figure4 () in
  let groups = G.make params fps in
  let covered =
    List.concat_map
      (function
        | G.Solo f -> [ f.G.index ]
        | G.Shared { leader; _ } -> [ leader.G.index ]
        | G.Cluster { members; _ } -> List.map (fun m -> m.G.index) members)
      groups
    |> List.sort_uniq compare
  in
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "fault %d targeted" f.G.index)
        true
        (List.mem f.G.index covered))
    fps

let test_paper_params () =
  let p = G.paper_params ~maxsize:100 ~floor_scale:1.0 in
  Alcotest.(check int) "large" 60 p.G.large;
  Alcotest.(check int) "med" 25 p.G.med;
  Alcotest.(check int) "dist" 20 p.G.dist;
  (* Small chains: floors dominate. *)
  let p = G.paper_params ~maxsize:10 ~floor_scale:1.0 in
  Alcotest.(check int) "large floor" 50 p.G.large;
  (* Scaled floors shrink with the benchmark scale. *)
  let p = G.paper_params ~maxsize:10 ~floor_scale:0.1 in
  Alcotest.(check int) "scaled large floor" 6 p.G.large

let test_bounds_of_group () =
  let lead = fp 2 [ (0, 2); (0, 5) ] in
  let b = G.bounds_of_group (G.Solo lead) in
  Alcotest.(check bool) "solo bounds" true (b = [ (0, (2, 5)) ]);
  let b =
    G.bounds_of_group (G.Cluster { chain = 1; lo = 3; hi = 7; members = [] })
  in
  Alcotest.(check bool) "cluster bounds" true (b = [ (1, (3, 7)) ])

let suite =
  [
    Alcotest.test_case "figure 4 grouping" `Quick test_figure4_grouping;
    Alcotest.test_case "cluster window bound" `Quick test_cluster_window_bound;
    Alcotest.test_case "multi-chain solo" `Quick test_multi_chain_goes_solo;
    Alcotest.test_case "all faults targeted" `Quick test_every_fault_in_some_group;
    Alcotest.test_case "paper parameters" `Quick test_paper_params;
    Alcotest.test_case "bounds of group" `Quick test_bounds_of_group;
  ]
