open Fst_logic
open Fst_netlist

let test_make_checks_roles () =
  let c, pi0, _ff0, _ff1, g0 = Helpers.figure2_circuit () in
  (* A gate-driven net cannot be free. *)
  (match View.make c ~free:[ g0 ] ~fixed:[] ~observe:[] with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "gate-driven free net accepted");
  (* A net cannot be both free and fixed. *)
  match View.make c ~free:[ pi0 ] ~fixed:[ (pi0, V3.One) ] ~observe:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "free+fixed accepted"

let test_obs_source_net () =
  let c, _pi0, _ff0, ff1, g0 = Helpers.figure2_circuit () in
  let v = View.make c ~free:[] ~fixed:[] ~observe:[ View.Onet g0 ] in
  Alcotest.(check int) "net point" g0 (View.obs_source_net v (View.Onet g0));
  (* ff1's data pin reads g0. *)
  Alcotest.(check int) "pin point" g0
    (View.obs_source_net v (View.Opin { node = ff1; pin = 0 }))

let test_free_inputs_sorted () =
  let c = Helpers.small_seq_circuit ~gates:60 ~ffs:4 2L in
  let v =
    View.make c
      ~free:(Array.to_list c.Circuit.inputs @ Array.to_list c.Circuit.dffs)
      ~fixed:[] ~observe:[]
  in
  let free = View.free_inputs v in
  Alcotest.(check int) "count" (Circuit.input_count c + Circuit.dff_count c)
    (Array.length free);
  let sorted = ref true in
  for i = 1 to Array.length free - 1 do
    if free.(i) <= free.(i - 1) then sorted := false
  done;
  Alcotest.(check bool) "ascending ids" true !sorted

let test_scanned_netfile_roundtrip () =
  (* Scanned circuits (with test points and muxes) survive the text
     format. *)
  let c = Helpers.small_seq_circuit ~gates:120 ~ffs:8 5L in
  let scanned, _config = Fst_tpi.Tpi.insert c in
  let text = Netfile.to_string scanned in
  let c2 = Netfile.parse_string ~name:scanned.Circuit.name text in
  Alcotest.(check int) "nets preserved" (Circuit.num_nets scanned)
    (Circuit.num_nets c2);
  Alcotest.(check string) "stable round trip" text (Netfile.to_string c2)

let suite =
  [
    Alcotest.test_case "role checks" `Quick test_make_checks_roles;
    Alcotest.test_case "obs source nets" `Quick test_obs_source_net;
    Alcotest.test_case "free inputs" `Quick test_free_inputs_sorted;
    Alcotest.test_case "scanned netlist roundtrip" `Quick test_scanned_netfile_roundtrip;
  ]
