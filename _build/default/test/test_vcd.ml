open Fst_logic
open Fst_netlist
open Fst_sim

let contains = Helpers.contains_substring

let small () =
  let b = Builder.create ~name:"wave" () in
  let a = Builder.add_input ~name:"a" b in
  let y = Builder.add_gate ~name:"y" b Gate.Not [ a ] in
  Builder.mark_output b y;
  (Builder.freeze b, a, y)

let test_header_and_vars () =
  let c, a, y = small () in
  let out =
    Vcd.render c ~nets:[| a; y |]
      ~trace:[| [| V3.Zero; V3.One |]; [| V3.One; V3.Zero |] |]
  in
  Alcotest.(check bool) "version" true (contains ~needle:"$version" out);
  Alcotest.(check bool) "var a" true (contains ~needle:"$var wire 1 ! a $end" out);
  Alcotest.(check bool) "var y" true (contains ~needle:"$var wire 1 \" y $end" out);
  Alcotest.(check bool) "enddefinitions" true
    (contains ~needle:"$enddefinitions $end" out)

let test_change_compression () =
  let c, a, _ = small () in
  (* Value held constant: only one change record for that signal. *)
  let out =
    Vcd.render c ~nets:[| a |]
      ~trace:[| [| V3.One |]; [| V3.One |]; [| V3.Zero |] |]
  in
  Alcotest.(check bool) "t0 dumped" true (contains ~needle:"#0\n1!" out);
  Alcotest.(check bool) "no redundant t1" false (contains ~needle:"#1\n" out);
  Alcotest.(check bool) "t2 change" true (contains ~needle:"#2\n0!" out)

let test_x_values () =
  let c, a, _ = small () in
  let out = Vcd.render c ~nets:[| a |] ~trace:[| [| V3.X |] |] in
  Alcotest.(check bool) "x dumped" true (contains ~needle:"x!" out)

let test_of_stimulus () =
  let c, a, y = small () in
  let out =
    Vcd.of_stimulus c ~nets:[| a; y |]
      [| [ (a, V3.One) ]; [ (a, V3.Zero) ] |]
  in
  (* y is the inverse of a at every step. *)
  Alcotest.(check bool) "t0: a=1 y=0" true
    (contains ~needle:"#0" out && contains ~needle:"1!" out
   && contains ~needle:"0\"" out)

let test_ident_uniqueness () =
  (* Identifier generation must be injective over a wide range. *)
  let c = Helpers.small_seq_circuit ~gates:200 ~ffs:10 1L in
  let nets = Array.init (Circuit.num_nets c) (fun i -> i) in
  let trace = [| Array.make (Array.length nets) V3.Zero |] in
  let out = Vcd.render c ~nets ~trace in
  (* every net got a $var line *)
  let count = ref 0 in
  String.split_on_char '\n' out
  |> List.iter (fun l -> if String.length l > 4 && String.sub l 0 4 = "$var" then incr count);
  Alcotest.(check int) "one var per net" (Array.length nets) !count

let suite =
  [
    Alcotest.test_case "header and vars" `Quick test_header_and_vars;
    Alcotest.test_case "change compression" `Quick test_change_compression;
    Alcotest.test_case "x values" `Quick test_x_values;
    Alcotest.test_case "of_stimulus" `Quick test_of_stimulus;
    Alcotest.test_case "identifier uniqueness" `Quick test_ident_uniqueness;
  ]
