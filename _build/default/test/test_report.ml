open Fst_report

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let test_render () =
  let t =
    Table.create ~title:"Table X"
      [ ("name", Table.Left); ("count", Table.Right) ]
  in
  Table.row t [ "alpha"; "10" ];
  Table.row t [ "b"; "2000" ];
  Table.rule t;
  Table.row t [ "total"; "2010" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true (contains ~needle:"Table X" out);
  Alcotest.(check bool) "right-aligned count" true
    (contains ~needle:"   10" out);
  Alcotest.(check bool) "has rule" true (contains ~needle:"---" out)

let test_row_arity_checked () =
  let t = Table.create ~title:"t" [ ("a", Table.Left) ] in
  match Table.row t [ "x"; "y" ] with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 12.5);
  Alcotest.(check string) "int pct" "5 (50.0%)" (Table.cell_int_pct 5 ~of_:10);
  Alcotest.(check string) "int pct zero" "5" (Table.cell_int_pct 5 ~of_:0);
  Alcotest.(check string) "seconds" "1.50s" (Table.cell_seconds 1.5)

let suite =
  [
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "row arity" `Quick test_row_arity_checked;
    Alcotest.test_case "cells" `Quick test_cells;
  ]
