open Fst_logic
open Fst_netlist
open Fst_atpg
module Q = QCheck

let comb_view c =
  View.make c
    ~free:(Array.to_list c.Circuit.inputs)
    ~fixed:[]
    ~observe:(Array.to_list c.Circuit.outputs |> List.map (fun o -> View.Onet o))

let test_uniform_covers_all_inputs () =
  let rng = Fst_gen.Rng.create 1L in
  let c = Helpers.random_comb_circuit (Fst_gen.Rng.create 2L) ~inputs:6 ~gates:10 in
  let v = Rtpg.uniform rng (comb_view c) in
  Alcotest.(check int) "all inputs assigned" 6 (List.length v);
  List.iter
    (fun (_, value) ->
      Alcotest.(check bool) "binary" true (V3.is_binary value))
    v

let test_weights_bias_direction () =
  (* An input feeding only AND gates must be biased toward 1; one feeding
     only OR gates toward 0. *)
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let o = Builder.add_input ~name:"o" b in
  let x = Builder.add_input ~name:"x" b in
  let y1 = Builder.add_gate ~name:"y1" b Gate.And [ a; x ] in
  let y2 = Builder.add_gate ~name:"y2" b Gate.Nand [ a; x ] in
  let y3 = Builder.add_gate ~name:"y3" b Gate.Or [ o; x ] in
  let y4 = Builder.add_gate ~name:"y4" b Gate.Nor [ o; x ] in
  Builder.mark_output b y1;
  Builder.mark_output b y2;
  Builder.mark_output b y3;
  Builder.mark_output b y4;
  let c = Builder.freeze b in
  let w = Rtpg.weights (comb_view c) in
  let wa = List.assoc a w and wo = List.assoc o w in
  Alcotest.(check bool) (Printf.sprintf "and-fed biased high (%.2f)" wa) true (wa > 0.5);
  Alcotest.(check bool) (Printf.sprintf "or-fed biased low (%.2f)" wo) true (wo < 0.5)

let prop_weighted_respects_weights =
  Q.Test.make ~name:"weighted sampling tracks the weights" ~count:5
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let c =
        Helpers.random_comb_circuit (Fst_gen.Rng.create seed) ~inputs:5
          ~gates:15
      in
      let view = comb_view c in
      let w = Rtpg.weights view in
      let rng = Fst_gen.Rng.create (Int64.add seed 3L) in
      let counts = Hashtbl.create 8 in
      let trials = 2000 in
      for _ = 1 to trials do
        List.iter
          (fun (net, v) ->
            if V3.equal v V3.One then
              Hashtbl.replace counts net
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts net)))
          (Rtpg.weighted rng view)
      done;
      List.for_all
        (fun (net, p) ->
          let ones = Option.value ~default:0 (Hashtbl.find_opt counts net) in
          let freq = float_of_int ones /. float_of_int trials in
          Float.abs (freq -. p) < 0.08)
        w)

let suite =
  [
    Alcotest.test_case "uniform covers inputs" `Quick test_uniform_covers_all_inputs;
    Alcotest.test_case "weights bias direction" `Quick test_weights_bias_direction;
    Helpers.qcheck prop_weighted_respects_weights;
  ]
