open Fst_logic
open Fst_netlist
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small ?(gates = 120) ?(ffs = 8) ?(chains = 2) seed =
  let c = Helpers.small_seq_circuit ~gates ~ffs seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains; justify_depth = 4 } c

let run_stim c stim =
  let st = Fst_sim.Sim.create c in
  let trace = ref [] in
  Array.iter
    (fun assigns ->
      List.iter (fun (n, v) -> Fst_sim.Sim.set_input c st n v) assigns;
      Fst_sim.Sim.eval_comb c st;
      trace := Array.copy (Fst_sim.Sim.values st) :: !trace;
      Fst_sim.Sim.clock c st)
    stim;
  Array.of_list (List.rev !trace)

let test_alternating_shape () =
  let scanned, config = scan_small 1L in
  let stim = Sequences.alternating scanned config ~repeats:2 in
  let l = Sequences.max_chain_length config in
  Alcotest.(check int) "length" ((2 * l) + 4 + l) (Array.length stim);
  (* Cycle 0 carries the constraints. *)
  List.iter
    (fun (n, v) ->
      match List.assoc_opt n stim.(0) with
      | Some v' -> Helpers.check_v3 "constraint applied" v v'
      | None -> Alcotest.fail "missing constraint at cycle 0")
    config.Scan.constraints

let test_alternating_fills_chain () =
  let scanned, config = scan_small ~chains:1 2L in
  let stim = Sequences.alternating scanned config ~repeats:3 in
  let trace = run_stim scanned stim in
  let ch = config.Scan.chains.(0) in
  let len = Array.length ch.Scan.ffs in
  (* After at least one full period + chain length, every chain position is
     binary (the 0011 pattern marched through). *)
  let t = (3 * len) + 3 in
  Array.iteri
    (fun p ff ->
      Alcotest.(check bool)
        (Printf.sprintf "position %d binary at cycle %d" p t)
        true
        (V3.is_binary trace.(t).(ff)))
    ch.Scan.ffs

(* A combinational test realization loads exactly the requested flip-flop
   values at the apply cycle. *)
let prop_comb_test_loads_state =
  Q.Test.make ~name:"comb-test realization loads the requested state" ~count:15
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let scanned, config = scan_small ~chains:2 seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 5L) in
      let ff_values =
        Array.to_list scanned.Circuit.dffs
        |> List.filter_map (fun ff ->
               if Fst_gen.Rng.bool rng then
                 Some (ff, V3.of_bool (Fst_gen.Rng.bool rng))
               else None)
      in
      let stim = Sequences.of_comb_test scanned config ~ff_values ~pi_values:[] in
      let trace = run_stim scanned stim in
      let l = Sequences.max_chain_length config in
      (* At the apply cycle (index l) the state is the loaded one. *)
      List.for_all
        (fun (ff, v) -> V3.equal trace.(l).(ff) v)
        ff_values)

let test_comb_test_pi_values_applied () =
  let scanned, config = scan_small ~chains:1 4L in
  let free =
    Array.to_list scanned.Circuit.inputs
    |> List.filter (fun i ->
           (not (List.mem_assoc i config.Scan.constraints))
           && not
                (Array.exists
                   (fun ch -> ch.Scan.scan_in = i)
                   config.Scan.chains))
  in
  match free with
  | [] -> () (* nothing to check on this seed *)
  | pi :: _ ->
    let stim =
      Sequences.of_comb_test scanned config ~ff_values:[]
        ~pi_values:[ (pi, V3.One) ]
    in
    let trace = run_stim scanned stim in
    let l = Sequences.max_chain_length config in
    Helpers.check_v3 "pi held at apply cycle" V3.One trace.(l).(pi)

(* Sequential-test realization: the initial controllable state is in place
   at the first frame cycle, and the per-frame input values are applied on
   their cycles. *)
let prop_seq_test_realization =
  Q.Test.make ~name:"seq-test realization places state and frames" ~count:10
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let scanned, config = scan_small ~chains:2 seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 23L) in
      (* Controllable prefix: first half of each chain. *)
      let init_state =
        Array.to_list config.Scan.chains
        |> List.concat_map (fun ch ->
               let len = Array.length ch.Scan.ffs in
               List.init (len / 2) (fun p ->
                   (ch.Scan.ffs.(p), V3.of_bool (Fst_gen.Rng.bool rng))))
      in
      let free =
        Array.to_list scanned.Circuit.inputs
        |> List.filter (fun i -> not (List.mem_assoc i config.Scan.constraints))
      in
      let frames = 2 in
      let pi_frames =
        Array.init frames (fun _ ->
            List.filter_map
              (fun pi ->
                if Fst_gen.Rng.bool rng then
                  Some (pi, V3.of_bool (Fst_gen.Rng.bool rng))
                else None)
              free)
      in
      let test = { Fst_atpg.Seq.frames; init_state; pi_frames } in
      let stim = Sequences.of_seq_test scanned config test in
      let trace = run_stim scanned stim in
      let l = Sequences.max_chain_length config in
      let state_ok =
        List.for_all (fun (ff, v) -> V3.equal trace.(l).(ff) v) init_state
      in
      let frames_ok =
        List.for_all
          (fun f ->
            List.for_all
              (fun (pi, v) -> V3.equal trace.(l + f).(pi) v)
              pi_frames.(f))
          [ 0; 1 ]
      in
      state_ok && frames_ok)

let test_concat () =
  let a = [| [ (0, V3.One) ] |] and b = [| [ (1, V3.Zero) ]; [] |] in
  let c = Sequences.concat [ a; b ] in
  Alcotest.(check int) "length" 3 (Array.length c)

let suite =
  [
    Alcotest.test_case "alternating shape" `Quick test_alternating_shape;
    Alcotest.test_case "alternating fills chain" `Quick test_alternating_fills_chain;
    Helpers.qcheck prop_comb_test_loads_state;
    Alcotest.test_case "comb-test PI values applied" `Quick test_comb_test_pi_values_applied;
    Helpers.qcheck prop_seq_test_realization;
    Alcotest.test_case "concat" `Quick test_concat;
  ]
