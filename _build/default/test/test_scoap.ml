open Fst_logic
open Fst_netlist
open Fst_testability
module Q = QCheck

(* a, b -> AND y -> PO. *)
let and_view () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let b2 = Builder.add_input ~name:"b" b in
  let y = Builder.add_gate ~name:"y" b Gate.And [ a; b2 ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  ( View.make c
      ~free:(Array.to_list c.Circuit.inputs)
      ~fixed:[]
      ~observe:[ View.Onet y ],
    a,
    b2,
    y )

let test_and_gate_measures () =
  let view, a, b2, y = and_view () in
  let m = Scoap.compute view in
  Alcotest.(check int) "cc0 input" 1 m.Scoap.cc0.(a);
  Alcotest.(check int) "cc1 input" 1 m.Scoap.cc1.(a);
  (* and output: cc1 = 1+1+1 = 3; cc0 = min(1,1)+1 = 2 *)
  Alcotest.(check int) "cc1 and" 3 m.Scoap.cc1.(y);
  Alcotest.(check int) "cc0 and" 2 m.Scoap.cc0.(y);
  Alcotest.(check int) "obs output" 0 m.Scoap.obs.(y);
  (* observing a requires b = 1: obs = 0 + cc1(b) + 1 = 2 *)
  Alcotest.(check int) "obs input" 2 m.Scoap.obs.(a);
  Alcotest.(check int) "obs other input" 2 m.Scoap.obs.(b2)

let test_fixed_net_infinite () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let k = Builder.add_input ~name:"k" b in
  let y = Builder.add_gate ~name:"y" b Gate.And [ a; k ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let view =
    View.make c ~free:[ a ] ~fixed:[ (k, V3.Zero) ] ~observe:[ View.Onet y ]
  in
  let m = Scoap.compute view in
  Alcotest.(check int) "fixed value free" 0 m.Scoap.cc0.(k);
  Alcotest.(check bool) "opposite infinite" true (m.Scoap.cc1.(k) >= Scoap.infinite);
  (* y can never be 1 because k is tied to 0. *)
  Alcotest.(check bool) "y cc1 infinite" true (m.Scoap.cc1.(y) >= Scoap.infinite);
  (* a is unobservable through the killed gate. *)
  Alcotest.(check bool) "a obs infinite" true (m.Scoap.obs.(a) >= Scoap.infinite)

let test_xor_parity_controllability () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let b2 = Builder.add_input ~name:"b" b in
  let y = Builder.add_gate ~name:"y" b Gate.Xor [ a; b2 ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let view =
    View.make c
      ~free:(Array.to_list c.Circuit.inputs)
      ~fixed:[] ~observe:[ View.Onet y ]
  in
  let m = Scoap.compute view in
  (* xor: both parities reachable, cost 2 inputs + 1. *)
  Alcotest.(check int) "xor cc0" 3 m.Scoap.cc0.(y);
  Alcotest.(check int) "xor cc1" 3 m.Scoap.cc1.(y)

(* Infinite controllability is a sound unachievability proof: whenever a
   value is actually reachable (exhaustive simulation), its cc is finite.
   The converse does not hold (reconvergent fanout can make a finite-cc
   value unachievable), so only this direction is checked. *)
let prop_cc_finite_iff_achievable =
  Q.Test.make ~name:"achievable values have finite cc" ~count:20
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let rng = Fst_gen.Rng.create seed in
      let c = Helpers.random_comb_circuit rng ~inputs:4 ~gates:10 in
      let view =
        View.make c
          ~free:(Array.to_list c.Circuit.inputs)
          ~fixed:[]
          ~observe:(Array.to_list c.Circuit.outputs |> List.map (fun o -> View.Onet o))
      in
      let m = Scoap.compute view in
      let inputs = c.Circuit.inputs in
      let n = Array.length inputs in
      let achievable = Array.make (Circuit.num_nets c) (false, false) in
      for code = 0 to (1 lsl n) - 1 do
        let st = Fst_sim.Sim.create c in
        Array.iteri
          (fun k pi ->
            Fst_sim.Sim.set_input c st pi (V3.of_bool (code land (1 lsl k) <> 0)))
          inputs;
        Fst_sim.Sim.eval_comb c st;
        for net = 0 to Circuit.num_nets c - 1 do
          let z, o = achievable.(net) in
          match Fst_sim.Sim.value st net with
          | V3.Zero -> achievable.(net) <- (true, o)
          | V3.One -> achievable.(net) <- (z, true)
          | V3.X -> ()
        done
      done;
      let ok = ref true in
      for net = 0 to Circuit.num_nets c - 1 do
        let z, o = achievable.(net) in
        if z && m.Scoap.cc0.(net) >= Scoap.infinite then ok := false;
        if o && m.Scoap.cc1.(net) >= Scoap.infinite then ok := false
      done;
      !ok)

let test_scan_mode_view_roles () =
  let c, _, _, _, _ = Helpers.figure2_circuit () in
  let scanned, config =
    Fst_tpi.Tpi.insert ~options:{ Fst_tpi.Tpi.default_options with Fst_tpi.Tpi.chains = 1; justify_depth = 2 } c
  in
  let view =
    View.scan_mode scanned ~constraints:config.Fst_tpi.Scan.constraints ()
  in
  (* Flip-flop outputs are pseudo inputs. *)
  Array.iter
    (fun ff -> Alcotest.(check bool) "ff free" true view.View.free.(ff))
    scanned.Circuit.dffs;
  (* scan_mode is fixed to 1. *)
  let sm = config.Fst_tpi.Scan.scan_mode in
  (match view.View.fixed.(sm) with
   | Some V3.One -> ()
   | _ -> Alcotest.fail "scan_mode should be fixed to 1");
  (* Every flip-flop data pin is observed. *)
  let pins =
    Array.to_list view.View.observe
    |> List.filter_map (function
         | View.Opin { node; _ } -> Some node
         | View.Onet _ -> None)
    |> List.sort compare
  in
  Alcotest.(check (list int))
    "observed pins are the flip-flops"
    (Array.to_list scanned.Circuit.dffs |> List.sort compare)
    pins

let suite =
  [
    Alcotest.test_case "and gate measures" `Quick test_and_gate_measures;
    Alcotest.test_case "fixed nets are infinite" `Quick test_fixed_net_infinite;
    Alcotest.test_case "xor parity controllability" `Quick test_xor_parity_controllability;
    Helpers.qcheck prop_cc_finite_iff_achievable;
    Alcotest.test_case "scan-mode view roles" `Quick test_scan_mode_view_roles;
  ]
