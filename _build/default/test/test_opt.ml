open Fst_logic
open Fst_netlist
module Q = QCheck

(* Equivalence oracle: run both circuits for [cycles] with the same input
   stream and compare primary outputs and flip-flop values (matched by
   name) every cycle. *)
let equivalent a b ~seed ~cycles =
  let rng = Fst_gen.Rng.create seed in
  let stream =
    Array.init cycles (fun _ ->
        Array.to_list a.Circuit.inputs
        |> List.map (fun pi ->
               (Circuit.net_name a pi, V3.of_bool (Fst_gen.Rng.bool rng))))
  in
  let run (c : Circuit.t) =
    let st = Fst_sim.Sim.create c in
    let trace = ref [] in
    Array.iter
      (fun assigns ->
        List.iter
          (fun (name, v) ->
            Fst_sim.Sim.set_input c st (Circuit.find_net c name) v)
          assigns;
        Fst_sim.Sim.eval_comb c st;
        let outs = Array.map (fun o -> Fst_sim.Sim.value st o) c.Circuit.outputs in
        let ffs =
          Array.to_list c.Circuit.dffs
          |> List.map (fun ff -> (Circuit.net_name c ff, Fst_sim.Sim.value st ff))
          |> List.sort compare
        in
        trace := (Array.to_list outs, ffs) :: !trace;
        Fst_sim.Sim.clock c st)
      stream;
    List.rev !trace
  in
  run a = run b

(* A circuit with constants and buffers to chew on. *)
let dirty_circuit seed =
  let rng = Fst_gen.Rng.create seed in
  let b = Builder.create ~name:"dirty" () in
  let pis = Array.init 5 (fun i -> Builder.add_input ~name:(Printf.sprintf "pi%d" i) b) in
  let k0 = Builder.add_const ~name:"k0" b V3.Zero in
  let k1 = Builder.add_const ~name:"k1" b V3.One in
  let pool = ref (Array.to_list pis @ [ k0; k1 ]) in
  let pick () = Fst_gen.Rng.pick rng (Array.of_list !pool) in
  let ffs = Array.init 4 (fun i -> Builder.add_dff_placeholder ~name:(Printf.sprintf "ff%d" i) b) in
  pool := Array.to_list ffs @ !pool;
  for i = 0 to 39 do
    let g =
      Fst_gen.Rng.weighted rng
        [ (3, Gate.Nand); (3, Gate.Nor); (2, Gate.And); (2, Gate.Or);
          (3, Gate.Not); (3, Gate.Buf); (2, Gate.Xor); (1, Gate.Xnor) ]
    in
    let arity = match g with Gate.Not | Gate.Buf -> 1 | _ -> 2 + Fst_gen.Rng.int rng 5 in
    let net =
      Builder.add_gate ~name:(Printf.sprintf "g%d" i) b g
        (List.init arity (fun _ -> pick ()))
    in
    pool := net :: !pool
  done;
  Array.iter (fun ff -> Builder.connect_dff b ~ff ~data:(pick ())) ffs;
  for _ = 0 to 3 do
    Builder.mark_output b (pick ())
  done;
  Builder.freeze b

let passes =
  [
    ("constant_fold", fun c -> Opt.constant_fold c);
    ("collapse_buffers", fun c -> Opt.collapse_buffers c);
    ("sweep", fun c -> Opt.sweep c);
    ("limit_fanin", fun c -> Opt.limit_fanin ~max_fanin:3 c);
    ("optimize", fun c -> Opt.optimize c);
  ]

let prop_passes_preserve_behavior =
  Q.Test.make ~name:"optimization passes preserve behaviour" ~count:25
    (Q.map Int64.of_int (Q.int_bound 1000000))
    (fun seed ->
      let c = dirty_circuit seed in
      List.for_all
        (fun (name, pass) ->
          let c', _ = pass c in
          if equivalent c c' ~seed:(Int64.add seed 17L) ~cycles:8 then true
          else Q.Test.fail_reportf "pass %s changed behaviour" name)
        passes)

let test_constant_fold_shrinks () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let k1 = Builder.add_const ~name:"k1" b V3.One in
  let y = Builder.add_gate ~name:"y" b Gate.And [ a; k1 ] in
  let z = Builder.add_gate ~name:"z" b Gate.Or [ y; k1 ] in
  Builder.mark_output b z;
  let c = Builder.freeze b in
  let c', stats = Opt.constant_fold c in
  Alcotest.(check bool) "fold happened" true (stats.Opt.folded >= 1);
  (* z = OR(_, 1) = 1: the output collapses to a constant. *)
  match Circuit.node c' c'.Circuit.outputs.(0) with
  | Circuit.Const V3.One -> ()
  | _ -> Alcotest.fail "output should fold to constant 1"

let test_buffer_chain_collapses () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let b1 = Builder.add_gate ~name:"b1" b Gate.Buf [ a ] in
  let n1 = Builder.add_gate ~name:"n1" b Gate.Not [ b1 ] in
  let n2 = Builder.add_gate ~name:"n2" b Gate.Not [ n1 ] in
  let y = Builder.add_gate ~name:"y" b Gate.Buf [ n2 ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let c', stats = Opt.optimize c in
  Alcotest.(check bool) "bypasses counted" true (stats.Opt.bypassed >= 2);
  (* Everything collapses onto the input. *)
  Alcotest.(check int) "output is the input" c'.Circuit.outputs.(0)
    (Circuit.find_net c' "a")

let test_sweep_removes_dangling () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let y = Builder.add_gate ~name:"y" b Gate.Not [ a ] in
  let _dangling = Builder.add_gate ~name:"dead" b Gate.Not [ a ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let c', stats = Opt.sweep c in
  Alcotest.(check int) "one gate swept" 1 stats.Opt.swept;
  Alcotest.(check int) "one gate left" 1 (Circuit.gate_count c')

let test_limit_fanin_bound () =
  let b = Builder.create () in
  let pis = List.init 9 (fun i -> Builder.add_input ~name:(Printf.sprintf "i%d" i) b) in
  let y = Builder.add_gate ~name:"y" b Gate.Nand pis in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let c', stats = Opt.limit_fanin ~max_fanin:3 c in
  Alcotest.(check bool) "gates added" true (stats.Opt.decomposed > 0);
  Alcotest.(check bool) "fanin bounded" true (Circuit.max_fanin c' <= 3);
  (* Polarity preserved: output is still a nand. *)
  match Circuit.node c' (Circuit.find_net c' "y") with
  | Circuit.Gate (Gate.Nand, _) -> ()
  | _ -> Alcotest.fail "root polarity lost"

let test_flip_flops_survive () =
  let c = Helpers.small_seq_circuit ~gates:80 ~ffs:8 3L in
  let c', _ = Opt.optimize c in
  Alcotest.(check int) "ff count preserved" (Circuit.dff_count c)
    (Circuit.dff_count c')

let suite =
  [
    Helpers.qcheck prop_passes_preserve_behavior;
    Alcotest.test_case "constant fold shrinks" `Quick test_constant_fold_shrinks;
    Alcotest.test_case "buffer chain collapses" `Quick test_buffer_chain_collapses;
    Alcotest.test_case "sweep removes dangling" `Quick test_sweep_removes_dangling;
    Alcotest.test_case "fanin bound" `Quick test_limit_fanin_bound;
    Alcotest.test_case "flip-flops survive" `Quick test_flip_flops_survive;
  ]
