open Fst_logic
open Fst_netlist

let chain_of_gates n =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let rec build prev k =
    if k = 0 then prev
    else build (Builder.add_gate ~name:(Printf.sprintf "g%d" k) b Gate.Not [ prev ]) (k - 1)
  in
  let last = build a n in
  Builder.mark_output b last;
  Builder.freeze b

let test_unit_chain_depth () =
  let c = chain_of_gates 5 in
  let delay, path = Timing.critical_path c in
  Alcotest.(check int) "five units" 5 delay;
  Alcotest.(check int) "path nets" 6 (List.length path)

let test_mapped_model () =
  let c = chain_of_gates 3 in
  let delay, _ = Timing.critical_path ~model:Timing.mapped_model c in
  Alcotest.(check int) "three inverters" 18 delay

let test_worst_ff_path () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let ff = Builder.add_dff_placeholder ~name:"ff" b in
  let g1 = Builder.add_gate ~name:"g1" b Gate.And [ a; ff ] in
  let g2 = Builder.add_gate ~name:"g2" b Gate.Not [ g1 ] in
  Builder.connect_dff b ~ff ~data:g2;
  (* A faster path feeds the output. *)
  let po = Builder.add_gate ~name:"po" b Gate.Buf [ a ] in
  Builder.mark_output b po;
  let c = Builder.freeze b in
  Alcotest.(check int) "ff path is two gates" 2 (Timing.worst_ff_path c);
  let full, _ = Timing.critical_path c in
  Alcotest.(check int) "overall still two" 2 full

let test_no_ffs () =
  let c = chain_of_gates 2 in
  Alcotest.(check int) "no ff paths" 0 (Timing.worst_ff_path c)

let test_scan_mux_slows_ff_paths () =
  (* Conventional MUXed scan adds gates on every flip-flop data path; TPI
     adds them only on mux segments — the paper's performance argument. *)
  let c = Helpers.small_seq_circuit ~gates:200 ~ffs:14 9L in
  let before = Timing.worst_ff_path ~model:Timing.mapped_model c in
  let full, _ = Fst_tpi.Tpi.full_scan ~chains:2 c in
  let after_full = Timing.worst_ff_path ~model:Timing.mapped_model full in
  Alcotest.(check bool)
    (Printf.sprintf "full scan slows the worst path (%d -> %d)" before after_full)
    true (after_full >= before);
  (* The worst path through a scan mux costs and+or on top of the original
     logic whenever the worst path ends in a muxed flip-flop. *)
  Alcotest.(check bool) "positive delay" true (before > 0)

let suite =
  [
    Alcotest.test_case "unit chain depth" `Quick test_unit_chain_depth;
    Alcotest.test_case "mapped model" `Quick test_mapped_model;
    Alcotest.test_case "worst ff path" `Quick test_worst_ff_path;
    Alcotest.test_case "no flip-flops" `Quick test_no_ffs;
    Alcotest.test_case "scan mux slows ff paths" `Quick test_scan_mux_slows_ff_paths;
  ]
