open Fst_logic
open Fst_netlist
open Fst_fault
module Q = QCheck

let test_universe_counts () =
  let c, _, _, _, _ = Helpers.figure2_circuit () in
  (* 5 nets -> 10 stem faults; every net has fanout 1 except ff1 (feeds g0
     data? no: pi0->g0, ff0->g0, g0->ff1, ff1->g1, g1->ff0+po). g1 feeds
     ff0 and is an output, so fanout(g1) = 1 consumer; no branch faults
     except nets with >1 consumers. *)
  let u = Fault.universe c in
  let stems, branches =
    Array.fold_left
      (fun (s, b) f ->
        match f.Fault.site with
        | Fault.Stem _ -> (s + 1, b)
        | Fault.Branch _ -> (s, b + 1))
      (0, 0) u
  in
  Alcotest.(check int) "stem faults" 10 stems;
  Alcotest.(check int) "no branch faults on fanout-1 nets" 0 branches

let test_branch_faults_on_fanout () =
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let y1 = Builder.add_gate ~name:"y1" b Gate.Not [ a ] in
  let y2 = Builder.add_gate ~name:"y2" b Gate.Buf [ a ] in
  Builder.mark_output b y1;
  Builder.mark_output b y2;
  let c = Builder.freeze b in
  let u = Fault.universe c in
  let branches =
    Array.to_list u
    |> List.filter (fun f ->
           match f.Fault.site with Fault.Branch _ -> true | Fault.Stem _ -> false)
  in
  (* net a has two consumers: 2 pins x 2 polarities. *)
  Alcotest.(check int) "branch faults" 4 (List.length branches)

let test_collapse_inverter_chain () =
  (* a -> NOT -> NOT -> po: all six stem faults collapse to two classes. *)
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let n1 = Builder.add_gate ~name:"n1" b Gate.Not [ a ] in
  let n2 = Builder.add_gate ~name:"n2" b Gate.Not [ n1 ] in
  Builder.mark_output b n2;
  let c = Builder.freeze b in
  let reps = Fault.collapse c (Fault.universe c) in
  Alcotest.(check int) "collapsed classes" 2 (Array.length reps)

let test_collapse_and_gate () =
  (* and(a, b) -> po: universe = 6 stem faults; a s-a-0 = b s-a-0 = y s-a-0
     -> 4 classes. *)
  let b = Builder.create () in
  let a = Builder.add_input ~name:"a" b in
  let b2 = Builder.add_input ~name:"b" b in
  let y = Builder.add_gate ~name:"y" b Gate.And [ a; b2 ] in
  Builder.mark_output b y;
  let c = Builder.freeze b in
  let reps = Fault.collapse c (Fault.universe c) in
  Alcotest.(check int) "collapsed classes" 4 (Array.length reps)

let test_collapse_classes_cover () =
  let c = Helpers.small_seq_circuit 3L in
  let u = Fault.universe c in
  let reps, class_of = Fault.collapse_classes c u in
  Alcotest.(check int) "every fault mapped" (Array.length u) (Array.length class_of);
  Array.iter
    (fun cls ->
      Alcotest.(check bool) "class in range" true
        (cls >= 0 && cls < Array.length reps))
    class_of

(* Collapsed faults are genuinely equivalent: on a small combinational
   circuit, every fault in a class is detected by exactly the same
   exhaustive input assignments as its representative. *)
let prop_collapse_equivalence =
  Q.Test.make ~name:"collapsed faults are test-equivalent" ~count:12
    (Q.map Int64.of_int (Q.int_bound 10000))
    (fun seed ->
      let rng = Fst_gen.Rng.create seed in
      let c = Helpers.random_comb_circuit rng ~inputs:5 ~gates:12 in
      let u = Fault.universe c in
      let reps, class_of = Fault.collapse_classes c u in
      let detects fault code =
        let stim =
          [| Array.to_list
               (Array.mapi
                  (fun k pi ->
                    (pi, Fst_logic.V3.of_bool (code land (1 lsl k) <> 0)))
                  c.Circuit.inputs) |]
        in
        Fst_fsim.Fsim.Serial.detect c ~fault ~observe:c.Circuit.outputs stim
        <> None
      in
      let n_codes = 1 lsl Array.length c.Circuit.inputs in
      let ok = ref true in
      Array.iteri
        (fun i fault ->
          let rep = reps.(class_of.(i)) in
          if not (Fault.equal fault rep) then
            for code = 0 to n_codes - 1 do
              if detects fault code <> detects rep code then ok := false
            done)
        u;
      !ok)

let test_to_string () =
  let c, pi0, _, _, _ = Helpers.figure2_circuit () in
  let s = Fault.to_string c { Fault.site = Fault.Stem pi0; stuck = false } in
  Alcotest.(check string) "fault name" "pi0 s-a-0" s

let suite =
  [
    Alcotest.test_case "universe counts" `Quick test_universe_counts;
    Alcotest.test_case "branch faults on fanout" `Quick test_branch_faults_on_fanout;
    Alcotest.test_case "collapse inverter chain" `Quick test_collapse_inverter_chain;
    Alcotest.test_case "collapse and gate" `Quick test_collapse_and_gate;
    Alcotest.test_case "collapse classes cover" `Quick test_collapse_classes_cover;
    Helpers.qcheck prop_collapse_equivalence;
    Alcotest.test_case "fault to_string" `Quick test_to_string;
  ]
