open Fst_logic
open Fst_netlist
open Fst_atpg
module Q = QCheck

(* The unrolled combinational model must agree with sequential simulation:
   for random initial states and per-frame inputs, every frame's nets match
   the sequential machine cycle by cycle. *)
let prop_unroll_matches_sequential =
  Q.Test.make ~name:"unrolled model matches sequential simulation" ~count:20
    (Q.pair (Q.map Int64.of_int (Q.int_bound 100000)) (Q.int_range 1 4))
    (fun (seed, frames) ->
      let c = Helpers.small_seq_circuit ~gates:50 ~ffs:5 seed in
      let u =
        Unroll.build c ~frames ~constraints:[]
          ~controllable_ff:(fun _ -> true)
          ~observable_ff:(fun _ -> true)
      in
      let rng = Fst_gen.Rng.create (Int64.add seed 3L) in
      let init =
        Array.map (fun ff -> (ff, V3.of_bool (Fst_gen.Rng.bool rng))) c.Circuit.dffs
      in
      let stim_frames =
        Array.init frames (fun _ ->
            Array.map
              (fun pi -> (pi, V3.of_bool (Fst_gen.Rng.bool rng)))
              c.Circuit.inputs)
      in
      (* Sequential reference. *)
      let st = Fst_sim.Sim.create c in
      Array.iter (fun (ff, v) -> Fst_sim.Sim.set_ff c st ff v) init;
      let seq_values = Array.make frames [||] in
      for f = 0 to frames - 1 do
        Array.iter (fun (pi, v) -> Fst_sim.Sim.set_input c st pi v) stim_frames.(f);
        Fst_sim.Sim.eval_comb c st;
        seq_values.(f) <- Array.copy (Fst_sim.Sim.values st);
        Fst_sim.Sim.clock c st
      done;
      (* Unrolled evaluation. *)
      let uc = u.Unroll.view.View.circuit in
      let ust = Fst_sim.Sim.create uc in
      Array.iter
        (fun (ff, v) -> Fst_sim.Sim.set_input uc ust u.Unroll.net_at.(0).(ff) v)
        init;
      for f = 0 to frames - 1 do
        Array.iter
          (fun (pi, v) -> Fst_sim.Sim.set_input uc ust u.Unroll.net_at.(f).(pi) v)
          stim_frames.(f)
      done;
      Fst_sim.Sim.eval_comb uc ust;
      let ok = ref true in
      for f = 0 to frames - 1 do
        for net = 0 to Circuit.num_nets c - 1 do
          let expect = seq_values.(f).(net) in
          let got = Fst_sim.Sim.value ust u.Unroll.net_at.(f).(net) in
          if not (V3.equal got expect) then ok := false
        done
      done;
      !ok)

let test_uncontrollable_state_is_x () =
  let c = Helpers.small_seq_circuit ~gates:30 ~ffs:4 5L in
  let u =
    Unroll.build c ~frames:2 ~constraints:[]
      ~controllable_ff:(fun _ -> false)
      ~observable_ff:(fun _ -> true)
  in
  let uc = u.Unroll.view.View.circuit in
  Array.iter
    (fun ff ->
      match Circuit.node uc u.Unroll.net_at.(0).(ff) with
      | Circuit.Const V3.X -> ()
      | _ -> Alcotest.fail "uncontrollable initial state must read X")
    c.Circuit.dffs;
  (* No frame-0 state inputs in the free set. *)
  Array.iter
    (fun net ->
      match Unroll.origin u net with
      | Unroll.State _ -> Alcotest.fail "state input for uncontrollable ff"
      | Unroll.Pi _ -> ())
    (View.free_inputs u.Unroll.view)

let test_constrained_pi_becomes_const () =
  let c = Helpers.small_seq_circuit ~gates:30 ~ffs:4 6L in
  let pi0 = c.Circuit.inputs.(0) in
  let u =
    Unroll.build c ~frames:2
      ~constraints:[ (pi0, V3.One) ]
      ~controllable_ff:(fun _ -> true)
      ~observable_ff:(fun _ -> true)
  in
  let uc = u.Unroll.view.View.circuit in
  for f = 0 to 1 do
    match Circuit.node uc u.Unroll.net_at.(f).(pi0) with
    | Circuit.Const V3.One -> ()
    | _ -> Alcotest.fail "constrained input must be a constant in every frame"
  done

let test_capture_buffers_observed () =
  let c = Helpers.small_seq_circuit ~gates:30 ~ffs:4 8L in
  let observable ff = ff = c.Circuit.dffs.(0) in
  let u =
    Unroll.build c ~frames:3 ~constraints:[]
      ~controllable_ff:(fun _ -> true)
      ~observable_ff:observable
  in
  let cap = u.Unroll.capture_of.(c.Circuit.dffs.(0)) in
  Alcotest.(check bool) "capture buffer exists" true (cap >= 0);
  let observed =
    Array.exists
      (function View.Onet n -> n = cap | View.Opin _ -> false)
      u.Unroll.view.View.observe;
  in
  Alcotest.(check bool) "capture buffer observed" true observed;
  Alcotest.(check int) "no capture for unobservable ffs" (-1)
    u.Unroll.capture_of.(c.Circuit.dffs.(1))

let test_fault_mapping_counts () =
  let c = Helpers.small_seq_circuit ~gates:30 ~ffs:4 9L in
  let frames = 3 in
  let u =
    Unroll.build c ~frames ~constraints:[]
      ~controllable_ff:(fun _ -> true)
      ~observable_ff:(fun _ -> true)
  in
  let stem = { Fst_fault.Fault.site = Fst_fault.Fault.Stem 0; stuck = true } in
  Alcotest.(check int) "stem maps to one site per frame" frames
    (List.length (Unroll.map_fault u stem))

let suite =
  [
    Helpers.qcheck prop_unroll_matches_sequential;
    Alcotest.test_case "uncontrollable state is X" `Quick test_uncontrollable_state_is_x;
    Alcotest.test_case "constrained pi becomes const" `Quick test_constrained_pi_becomes_const;
    Alcotest.test_case "capture buffers observed" `Quick test_capture_buffers_observed;
    Alcotest.test_case "fault mapping counts" `Quick test_fault_mapping_counts;
  ]
