test/test_netlist.ml: Alcotest Array Builder Circuit Fst_logic Fst_netlist Gate Helpers Int64 List Netfile QCheck V3
