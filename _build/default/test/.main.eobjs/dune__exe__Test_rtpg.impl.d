test/test_rtpg.ml: Alcotest Array Builder Circuit Float Fst_atpg Fst_gen Fst_logic Fst_netlist Gate Hashtbl Helpers Int64 List Option Printf QCheck Rtpg V3 View
