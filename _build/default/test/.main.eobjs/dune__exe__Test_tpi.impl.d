test/test_tpi.ml: Alcotest Array Builder Circuit Fst_logic Fst_netlist Fst_sim Fst_tpi Gate Helpers Int64 List Printf QCheck Scan Tpi V3
