test/test_report.ml: Alcotest Fst_report String Table
