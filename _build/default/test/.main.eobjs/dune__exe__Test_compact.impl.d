test/test_compact.ml: Alcotest Array Circuit Compact Fst_core Fst_fault Fst_gen Fst_logic Fst_netlist Fst_tpi Helpers Int64 List Printf QCheck Scan Sequences Tpi V3
