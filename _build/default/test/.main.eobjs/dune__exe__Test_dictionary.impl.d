test/test_dictionary.ml: Alcotest Array Circuit Dictionary Fault Fst_atpg Fst_core Fst_fault Fst_gen Fst_netlist Fst_tpi Helpers Int64 List Printf QCheck Scan Sequences Tpi View
