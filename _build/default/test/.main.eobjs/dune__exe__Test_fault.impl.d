test/test_fault.ml: Alcotest Array Builder Circuit Fault Fst_fault Fst_fsim Fst_gen Fst_logic Fst_netlist Gate Helpers Int64 List QCheck
