test/helpers.ml: Alcotest Array Builder Circuit Fst_fault Fst_fsim Fst_gen Fst_logic Fst_netlist Gate Hashtbl List Printf QCheck_alcotest Random String V3
