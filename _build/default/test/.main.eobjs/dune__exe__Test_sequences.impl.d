test/test_sequences.ml: Alcotest Array Circuit Fst_atpg Fst_core Fst_gen Fst_logic Fst_netlist Fst_sim Fst_tpi Helpers Int64 List Printf QCheck Scan Sequences Tpi V3
