test/test_fsim.ml: Alcotest Array Builder Circuit Fault Fsim Fst_fault Fst_fsim Fst_gen Fst_logic Fst_netlist Gate Helpers Int64 List QCheck V3
