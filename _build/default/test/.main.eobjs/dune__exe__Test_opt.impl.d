test/test_opt.ml: Alcotest Array Builder Circuit Fst_gen Fst_logic Fst_netlist Fst_sim Gate Helpers Int64 List Opt Printf QCheck V3
