test/test_unroll.ml: Alcotest Array Circuit Fst_atpg Fst_fault Fst_gen Fst_logic Fst_netlist Fst_sim Helpers Int64 List QCheck Unroll V3 View
