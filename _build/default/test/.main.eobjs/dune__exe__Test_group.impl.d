test/test_group.ml: Alcotest Fst_core Group List Printf
