test/test_vcd.ml: Alcotest Array Builder Circuit Fst_logic Fst_netlist Fst_sim Gate Helpers List String V3 Vcd
