test/main.mli:
