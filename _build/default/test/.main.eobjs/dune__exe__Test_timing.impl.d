test/test_timing.ml: Alcotest Builder Fst_logic Fst_netlist Fst_tpi Gate Helpers List Printf Timing
