test/test_sim.ml: Alcotest Array Builder Circuit Event_sim Fst_gen Fst_logic Fst_netlist Fst_sim Gate Helpers Int64 List QCheck Sim V3
