test/test_gen.ml: Alcotest Array Circuit Fst_gen Fst_netlist Hashtbl Helpers Int64 List Netfile Option QCheck
