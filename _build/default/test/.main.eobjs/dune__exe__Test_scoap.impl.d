test/test_scoap.ml: Alcotest Array Builder Circuit Fst_gen Fst_logic Fst_netlist Fst_sim Fst_testability Fst_tpi Gate Helpers Int64 List QCheck Scoap V3 View
