test/test_view.ml: Alcotest Array Circuit Fst_logic Fst_netlist Fst_tpi Helpers Netfile V3 View
