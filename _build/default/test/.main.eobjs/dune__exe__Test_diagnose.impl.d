test/test_diagnose.ml: Alcotest Array Builder Diagnose Fault Format Fst_core Fst_fault Fst_gen Fst_netlist Fst_tpi Helpers Int64 List Printf QCheck Scan Tpi
