test/test_flow.ml: Alcotest Array Circuit Classify Float Flow Fst_core Fst_fsim Fst_gen Fst_logic Fst_netlist Fst_tpi Helpers Int64 List QCheck Scan Sequences Tpi
