test/test_podem.ml: Alcotest Array Builder Circuit Fault Fst_atpg Fst_fault Fst_fsim Fst_gen Fst_logic Fst_netlist Fst_testability Gate Helpers Int64 List Podem QCheck V3 View
