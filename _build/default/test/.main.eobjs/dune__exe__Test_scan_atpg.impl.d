test/test_scan_atpg.ml: Alcotest Array Circuit Flow Fst_core Fst_gen Fst_logic Fst_netlist Fst_sim Fst_tpi Helpers Int64 List QCheck Scan Scan_atpg Sequences Tpi V3
