test/test_classify.ml: Alcotest Array Circuit Classify Fault Fst_core Fst_fault Fst_fsim Fst_logic Fst_netlist Fst_tpi Helpers Int64 List Printf QCheck Scan Sequences Tpi V3
