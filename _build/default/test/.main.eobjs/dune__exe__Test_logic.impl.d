test/test_logic.ml: Alcotest Dval Fst_logic Gate Helpers List Printf QCheck V3
