open Fst_logic
open Fst_netlist
open Fst_tpi
open Fst_core
module Q = QCheck

let scan_small seed =
  let c = Helpers.small_seq_circuit ~gates:150 ~ffs:10 seed in
  Tpi.insert ~options:{ Tpi.default_options with Tpi.chains = 2 } c

let random_blocks scanned config rng n =
  let free =
    Array.to_list scanned.Circuit.inputs
    |> List.filter (fun i -> not (List.mem_assoc i config.Scan.constraints))
  in
  List.init n (fun _ ->
      let ff_values =
        Array.to_list scanned.Circuit.dffs
        |> List.map (fun ff -> (ff, V3.of_bool (Fst_gen.Rng.bool rng)))
      in
      let pi_values =
        List.map (fun pi -> (pi, V3.of_bool (Fst_gen.Rng.bool rng))) free
      in
      Sequences.of_comb_test scanned config ~ff_values ~pi_values)

(* Reverse-order compaction keeps coverage exactly and never grows the
   set. *)
let prop_compaction_preserves_coverage =
  Q.Test.make ~name:"reverse-order compaction preserves coverage" ~count:8
    (Q.map Int64.of_int (Q.int_bound 100000))
    (fun seed ->
      let scanned, config = scan_small seed in
      let rng = Fst_gen.Rng.create (Int64.add seed 31L) in
      let blocks = random_blocks scanned config rng 24 in
      let faults =
        Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
      in
      let observe = scanned.Circuit.outputs in
      let before = Compact.coverage scanned ~faults ~observe ~blocks in
      let kept, credited =
        Compact.reverse_order scanned ~faults ~observe ~blocks
      in
      let kept_blocks = List.map (List.nth blocks) kept in
      let after = Compact.coverage scanned ~faults ~observe ~blocks:kept_blocks in
      credited = before && after = before
      && List.length kept <= List.length blocks)

let test_compaction_drops_redundant () =
  let scanned, config = scan_small 5L in
  let rng = Fst_gen.Rng.create 77L in
  (* Duplicate every block: at least half the set must go. *)
  let base = random_blocks scanned config rng 10 in
  let blocks = base @ base in
  let faults =
    Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
  in
  let kept, _ =
    Compact.reverse_order scanned ~faults ~observe:scanned.Circuit.outputs
      ~blocks
  in
  Alcotest.(check bool)
    (Printf.sprintf "kept %d of %d" (List.length kept) (List.length blocks))
    true
    (List.length kept <= List.length base)

let test_kept_indices_sorted_and_valid () =
  let scanned, config = scan_small 9L in
  let rng = Fst_gen.Rng.create 13L in
  let blocks = random_blocks scanned config rng 12 in
  let faults =
    Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned)
  in
  let kept, _ =
    Compact.reverse_order scanned ~faults ~observe:scanned.Circuit.outputs
      ~blocks
  in
  let rec sorted = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && sorted rest
  in
  Alcotest.(check bool) "sorted" true (sorted kept);
  List.iter
    (fun i ->
      Alcotest.(check bool) "in range" true (i >= 0 && i < List.length blocks))
    kept

let suite =
  [
    Helpers.qcheck prop_compaction_preserves_coverage;
    Alcotest.test_case "drops redundant blocks" `Quick test_compaction_drops_redundant;
    Alcotest.test_case "kept indices sorted" `Quick test_kept_indices_sorted_and_valid;
  ]
