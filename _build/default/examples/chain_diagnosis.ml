(* Chain failure diagnosis: the flow of this library tells you the chain
   test *failed*; this example shows the follow-up — locating the broken
   segment from the tester response alone.

   A defect is injected into a random chain flip-flop, the diagnostic
   session (shift rounds interleaved with functional captures) is applied,
   and the analytic chain model ranks (chain, segment, behaviour)
   hypotheses against the observed scan-out stream.

   Run with:  dune exec examples/chain_diagnosis.exe *)

open Fst_netlist
open Fst_fault
open Fst_tpi
open Fst_core

let profile =
  { Fst_gen.Gen.name = "dut"; gates = 600; ffs = 32; pis = 12; pos = 8; seed = 4242L }

let () =
  let circuit = Fst_gen.Gen.generate profile in
  let scanned, config =
    Tpi.insert ~options:{ Tpi.default_options with Tpi.chains = 2 } circuit
  in
  Format.printf "%a@.@." Circuit.pp_stats scanned;

  let rng = Fst_gen.Rng.create 9L in
  let trials = 8 in
  let hits = ref 0 in
  for trial = 1 to trials do
    let ch = config.Scan.chains.(Fst_gen.Rng.int rng (Array.length config.Scan.chains)) in
    let pos = Fst_gen.Rng.int rng (Array.length ch.Scan.ffs) in
    let stuck = Fst_gen.Rng.bool rng in
    let fault = { Fault.site = Fault.Stem ch.Scan.ffs.(pos); stuck } in
    Printf.printf "trial %d: injected %s (chain %d, position %d)\n" trial
      (Fault.to_string scanned fault)
      ch.Scan.index pos;
    (match Diagnose.diagnose_fault scanned config fault with
     | [] -> print_endline "  chain test passed?! (defect invisible)"
     | verdicts ->
       List.iteri
         (fun i v ->
           if i < 3 then
             Format.printf "  #%d %a@." (i + 1) Diagnose.pp_verdict v)
         verdicts;
       let top = List.hd verdicts in
       if
         top.Diagnose.hypothesis.Diagnose.chain = ch.Scan.index
         && abs (top.Diagnose.hypothesis.Diagnose.segment - pos) <= 1
       then begin
         incr hits;
         print_endline "  -> located"
       end
       else print_endline "  -> top candidate off target");
    print_newline ()
  done;
  Printf.printf "located %d / %d injected chain defects (top candidate, +/-1 position)\n"
    !hits trials;

  (* Logic defects are diagnosed the cause-effect way: build a fault
     dictionary over a test set, observe the failing die's pass/fail
     signature, rank candidates by signature distance. *)
  print_newline ();
  let view =
    Fst_netlist.View.scan_mode scanned ~constraints:config.Scan.constraints ()
  in
  let blocks =
    List.init 24 (fun _ ->
        let ff_values, pi_values =
          List.partition
            (fun (net, _) -> Circuit.is_dff scanned net)
            (Fst_atpg.Rtpg.uniform rng view)
        in
        Sequences.of_comb_test scanned config ~ff_values ~pi_values)
  in
  let faults = Fst_fault.Fault.collapse scanned (Fst_fault.Fault.universe scanned) in
  let dict =
    Dictionary.build scanned ~faults ~observe:scanned.Circuit.outputs ~blocks
  in
  Printf.printf
    "fault dictionary: %d faults x %d sequences, %d distinguishable signature classes\n"
    (Array.length faults) (Dictionary.num_blocks dict)
    (Dictionary.distinguishable dict);
  (* Pick a defect this test set actually catches (escapes exist: e.g.
     scan-mode-only logic under a random functional-looking set). *)
  let rec pick tries =
    let target = Fst_gen.Rng.int rng (Array.length faults) in
    let observed =
      Dictionary.observe_defect scanned dict ~fault:faults.(target) ~blocks
    in
    if observed = [] && tries > 0 then pick (tries - 1) else (target, observed)
  in
  let target, observed = pick 20 in
  (match Dictionary.rank dict ~observed with
   | (best, 0) :: _ when observed <> [] ->
     Printf.printf "injected logic defect %s; best dictionary match: %s\n"
       (Fault.to_string scanned faults.(target))
       (Fault.to_string scanned faults.(best))
   | _ ->
     Printf.printf "injected logic defect %s produced no failing sequence (escape)\n"
       (Fault.to_string scanned faults.(target)))
