(* Control-path functional scan (the motivation of Lin et al. [6,9]):
   control logic is rich in and/or gates with shallow flip-flop to
   flip-flop paths, so most of a scan chain can be routed through mission
   logic. This example compares TPI-based functional scan against the
   conventional MUXed-scan baseline on such a circuit, then runs the scan
   chain test flow and prints the step-by-step report.

   Run with:  dune exec examples/control_path_scan.exe *)

open Fst_netlist
open Fst_tpi
open Fst_core
module Table = Fst_report.Table

let profile =
  {
    Fst_gen.Gen.name = "controller";
    gates = 900;
    ffs = 48;
    pis = 16;
    pos = 12;
    seed = 2024L;
  }

let () =
  let circuit = Fst_gen.Gen.generate profile in
  Format.printf "Mission circuit: %a@.@." Circuit.pp_stats circuit;

  (* Conventional full scan vs TPI-based functional scan. *)
  let full_scanned, full_config = Tpi.full_scan ~chains:2 circuit in
  let tpi_scanned, tpi_config = Tpi.insert ~options:{ Tpi.default_options with Tpi.chains = 2; justify_depth = 4 } circuit in
  let oh_full = Tpi.overhead full_scanned full_config ~before:circuit in
  let oh_tpi = Tpi.overhead tpi_scanned tpi_config ~before:circuit in
  let t =
    Table.create ~title:"Scan overhead: conventional MUXed scan vs TPI"
      [
        ("", Table.Left);
        ("extra gates", Table.Right);
        ("dedicated FF-FF routes", Table.Right);
        ("functional segments", Table.Right);
      ]
  in
  Table.row t
    [
      "full scan";
      Table.cell_int oh_full.Tpi.extra_gates;
      Table.cell_int oh_full.Tpi.dedicated_routes;
      Table.cell_int oh_full.Tpi.functional_segments;
    ];
  Table.row t
    [
      "TPI";
      Table.cell_int oh_tpi.Tpi.extra_gates;
      Table.cell_int oh_tpi.Tpi.dedicated_routes;
      Table.cell_int oh_tpi.Tpi.functional_segments;
    ];
  Table.print t;
  Printf.printf
    "\nTPI reuses %d mission paths as scan segments and needs %d dedicated routes\n(instead of %d), at the price of %d control test points.\n\n"
    oh_tpi.Tpi.functional_segments oh_tpi.Tpi.dedicated_routes
    oh_full.Tpi.dedicated_routes tpi_config.Scan.test_points;

  (* The performance argument: conventional scan puts a multiplexer in
     front of every flip-flop; functional scan leaves sensitized mission
     paths alone. *)
  let model = Timing.mapped_model in
  Printf.printf
    "Worst register-to-register path (mapped delay units):\n  mission %d | full scan %d | TPI %d\n(control test points also sit on mission paths, so a lavish path budget\ncan cost more delay than the scan multiplexers it avoids — see the sweep)\n\n"
    (Timing.worst_ff_path ~model circuit)
    (Timing.worst_ff_path ~model full_scanned)
    (Timing.worst_ff_path ~model tpi_scanned);

  (* The segment-cost budget trades test points against dedicated routes:
     a cheap budget keeps almost everything on multiplexers, a lavish one
     maximizes functional reuse. *)
  let t =
    Table.create ~title:"Path-cost budget sweep (gates + side pins per segment)"
      [
        ("budget", Table.Right);
        ("functional", Table.Right);
        ("routes", Table.Right);
        ("test points", Table.Right);
        ("extra gates", Table.Right);
        ("worst FF path", Table.Right);
      ]
  in
  List.iter
    (fun budget ->
      let scanned, config =
        Tpi.insert
          ~options:{ Tpi.default_options with Tpi.chains = 2; max_path_cost = budget }
          circuit
      in
      let oh = Tpi.overhead scanned config ~before:circuit in
      Table.row t
        [
          Table.cell_int budget;
          Table.cell_int oh.Tpi.functional_segments;
          Table.cell_int oh.Tpi.dedicated_routes;
          Table.cell_int config.Scan.test_points;
          Table.cell_int oh.Tpi.extra_gates;
          Table.cell_int (Timing.worst_ff_path ~model scanned);
        ])
    [ 4; 8; 12; 24 ];
  Table.print t;
  print_newline ();

  (* Now the chain itself must be tested. *)
  let r = Flow.run tpi_scanned tpi_config in
  let t =
    Table.create ~title:"Functional scan chain testing"
      [ ("stage", Table.Left); ("detected", Table.Right); ("untestable", Table.Right); ("left", Table.Right) ]
  in
  Table.row t
    [
      "alternating sequence (category 1)";
      Table.cell_int (Array.length r.Flow.classify.Classify.easy);
      "";
      Table.cell_int (Array.length r.Flow.classify.Classify.hard);
    ];
  Table.row t
    [
      "comb ATPG + seq fault simulation";
      Table.cell_int r.Flow.step2.Flow.detected;
      Table.cell_int r.Flow.step2.Flow.untestable;
      Table.cell_int r.Flow.step2.Flow.undetected;
    ];
  Table.row t
    [
      "sequential ATPG (grouped models)";
      Table.cell_int r.Flow.step3.Flow.detected;
      Table.cell_int r.Flow.step3.Flow.untestable;
      Table.cell_int r.Flow.step3.Flow.undetected;
    ];
  Table.print t;
  Printf.printf
    "\n%d of %d faults affect the chain (%.1f%%); after the flow %d remain undetected.\n"
    (Flow.affecting r) (Flow.total_faults r)
    (100.0 *. float_of_int (Flow.affecting r) /. float_of_int (Flow.total_faults r))
    (List.length r.Flow.undetected)
