examples/control_path_scan.ml: Array Circuit Classify Flow Format Fst_core Fst_gen Fst_netlist Fst_report Fst_tpi List Printf Scan Timing Tpi
