examples/quickstart.ml: Array Builder Circuit Classify Flow Format Fst_core Fst_fault Fst_logic Fst_netlist Fst_tpi Gate List Printf Scan Tpi
