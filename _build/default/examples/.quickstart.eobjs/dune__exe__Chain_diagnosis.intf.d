examples/chain_diagnosis.mli:
