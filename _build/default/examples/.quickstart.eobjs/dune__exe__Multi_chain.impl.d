examples/multi_chain.ml: Array Circuit Classify Flow Format Fst_core Fst_fault Fst_gen Fst_netlist Fst_report Fst_tpi Group List Printf Scan Sequences Tpi
