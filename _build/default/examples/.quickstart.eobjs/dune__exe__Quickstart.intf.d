examples/quickstart.mli:
