examples/control_path_scan.mli:
