examples/chain_diagnosis.ml: Array Circuit Diagnose Dictionary Fault Format Fst_atpg Fst_core Fst_fault Fst_gen Fst_netlist Fst_tpi List Printf Scan Sequences Tpi
