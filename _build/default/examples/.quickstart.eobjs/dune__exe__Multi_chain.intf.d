examples/multi_chain.mli:
